"""Unit tests for the shared runahead building blocks: stride detector,
taint tracker, loop-bound detector, reconvergence stack, shadow state,
and the scalar speculative interpreter."""

import pytest

from repro.core.dyninstr import DynInstr
from repro.isa import Instruction, Opcode, ProgramBuilder
from repro.memory import MemoryImage
from repro.runahead import (
    LoopBoundDetector,
    ReconvergenceStack,
    ShadowState,
    StrideDetector,
    VectorTaintTracker,
)
from repro.runahead.interpreter import SpeculativeInterpreter


class TestStrideDetector:
    def test_detects_constant_stride(self):
        detector = StrideDetector()
        for k in range(5):
            detector.observe(pc=3, addr=0x1000 + 8 * k)
        assert detector.is_striding(3)
        assert detector.stride_of(3) == 8

    def test_needs_confidence(self):
        detector = StrideDetector(confidence_threshold=2)
        detector.observe(3, 0x1000)
        detector.observe(3, 0x1008)
        assert not detector.is_striding(3)  # stride seen once, conf 0->?
        detector.observe(3, 0x1010)
        detector.observe(3, 0x1018)
        assert detector.is_striding(3)

    def test_stride_change_resets_confidence(self):
        detector = StrideDetector()
        for k in range(5):
            detector.observe(3, 0x1000 + 8 * k)
        detector.observe(3, 0x9000)
        detector.observe(3, 0x9100)
        assert not detector.is_striding(3)

    def test_same_address_decays(self):
        detector = StrideDetector()
        for k in range(5):
            detector.observe(3, 0x1000 + 8 * k)
        for _ in range(4):
            detector.observe(3, 0x1020)
        assert not detector.is_striding(3)

    def test_lru_capacity(self):
        detector = StrideDetector(entries=4)
        for pc in range(8):
            detector.observe(pc, 0x1000)
        assert len(detector) == 4
        assert detector.lookup(0) is None
        assert detector.lookup(7) is not None

    def test_negative_stride(self):
        detector = StrideDetector()
        for k in range(5):
            detector.observe(3, 0x9000 - 16 * k)
        assert detector.is_striding(3)
        assert detector.stride_of(3) == -16

    def test_confident_strides_snapshot(self):
        detector = StrideDetector()
        for k in range(5):
            detector.observe(1, 0x1000 + 8 * k)
            detector.observe(2, 0x5000 + 64 * k)
            detector.observe(3, 0x8000)  # not striding
        snapshot = detector.confident_strides()
        assert snapshot == {1: 8, 2: 64}

    def test_innermost_bits_cleared(self):
        detector = StrideDetector()
        for k in range(4):
            detector.observe(1, 0x1000 + 8 * k)
        detector.lookup(1).innermost_bit = True
        detector.clear_innermost_bits()
        assert not detector.lookup(1).innermost_bit


class TestVectorTaintTracker:
    def make(self, seed=4):
        vtt = VectorTaintTracker()
        vtt.reset(seed)
        return vtt

    def test_seed_tainted(self):
        vtt = self.make(4)
        assert vtt.is_tainted(4)
        assert not vtt.is_tainted(5)

    def test_propagates_through_alu(self):
        vtt = self.make(4)
        assert vtt.propagate(Instruction(Opcode.ADD, rd=6, rs1=4, rs2=2))
        assert vtt.is_tainted(6)

    def test_clean_overwrite_clears(self):
        vtt = self.make(4)
        vtt.propagate(Instruction(Opcode.ADD, rd=6, rs1=4, rs2=2))
        assert not vtt.propagate(Instruction(Opcode.LI, rd=6, imm=0))
        assert not vtt.is_tainted(6)

    def test_transitive_chain(self):
        vtt = self.make(4)
        vtt.propagate(Instruction(Opcode.SHLI, rd=5, rs1=4, imm=3))
        vtt.propagate(Instruction(Opcode.ADD, rd=6, rs1=5, rs2=1))
        vtt.propagate(Instruction(Opcode.LOAD, rd=7, rs1=6))
        assert vtt.is_tainted(7)

    def test_reset_clears_previous(self):
        vtt = self.make(4)
        vtt.propagate(Instruction(Opcode.MOV, rd=9, rs1=4))
        vtt.reset(2)
        assert vtt.is_tainted(2)
        assert not vtt.is_tainted(9) and not vtt.is_tainted(4)


def _dyn(pc, instr, taken=None):
    return DynInstr(0, pc, instr, taken=taken, next_pc=pc + 1)


class TestLoopBoundDetector:
    def _locked_detector(self, trigger_pc=10):
        lbd = LoopBoundDetector(trigger_pc)
        lbd.observe(_dyn(12, Instruction(Opcode.CMP_LT, rd=5, rs1=1, rs2=2)))
        lbd.observe(_dyn(13, Instruction(Opcode.BNZ, rs1=5, target=8)))
        return lbd

    def test_locks_on_backward_branch(self):
        lbd = self._locked_detector()
        assert lbd.locked
        assert lbd.backward_branch_pc == 13
        assert lbd.backward_branch_target == 8

    def test_forward_branch_does_not_lock(self):
        lbd = LoopBoundDetector(10)
        lbd.observe(_dyn(12, Instruction(Opcode.CMP_LT, rd=5, rs1=1, rs2=2)))
        lbd.observe(_dyn(13, Instruction(Opcode.BNZ, rs1=5, target=20)))
        assert not lbd.locked

    def test_lcr_frozen_after_sbb(self):
        lbd = self._locked_detector()
        lbd.observe(_dyn(14, Instruction(Opcode.CMP_EQ, rd=7, rs1=3, rs2=4)))
        assert lbd.compare.rd == 5  # unchanged

    def test_final_load_update_resets(self):
        lbd = self._locked_detector()
        lbd.on_final_load_update()
        assert not lbd.locked

    def test_inference_increasing_induction(self):
        lbd = self._locked_detector()
        entry = [0] * 32
        exit_ = [0] * 32
        entry[1], exit_[1] = 5, 6  # induction += 1
        entry[2], exit_[2] = 100, 100  # bound constant
        inference = lbd.infer(entry, exit_)
        assert inference.found
        assert inference.remaining == 94
        assert inference.increment == 1
        assert inference.induction_reg == 1

    def test_inference_bound_in_rs1(self):
        lbd = self._locked_detector()
        entry = [0] * 32
        exit_ = [0] * 32
        entry[1], exit_[1] = 50, 50  # constant bound in rs1
        entry[2], exit_[2] = 10, 12  # induction in rs2 += 2
        inference = lbd.infer(entry, exit_)
        assert inference.found
        assert inference.induction_reg == 2
        assert inference.remaining == 19

    def test_inference_decrement_loop(self):
        lbd = self._locked_detector()
        entry = [0] * 32
        exit_ = [0] * 32
        entry[1], exit_[1] = 20, 18  # counting down by 2
        entry[2], exit_[2] = 0, 0
        inference = lbd.infer(entry, exit_)
        assert inference.found and inference.remaining == 9

    def test_inference_fails_when_both_change(self):
        lbd = self._locked_detector()
        entry = [0] * 32
        exit_ = [0] * 32
        entry[1], exit_[1] = 5, 6
        entry[2], exit_[2] = 7, 8
        assert not lbd.infer(entry, exit_).found

    def test_inference_immediate_compare(self):
        lbd = LoopBoundDetector(10)
        lbd.observe(_dyn(12, Instruction(Opcode.CMP_LTI, rd=5, rs1=1, imm=64)))
        lbd.observe(_dyn(13, Instruction(Opcode.BNZ, rs1=5, target=9)))
        entry = [0] * 32
        exit_ = [0] * 32
        entry[1], exit_[1] = 10, 11
        inference = lbd.infer(entry, exit_)
        assert inference.found and inference.remaining == 53

    def test_lanes_clamped(self):
        lbd = self._locked_detector()
        entry = [0] * 32
        exit_ = [0] * 32
        entry[1], exit_[1] = 0, 1
        entry[2], exit_[2] = 1000, 1000
        inference = lbd.infer(entry, exit_)
        assert inference.lanes(128) == 128

    def test_lanes_default_when_unknown(self):
        lbd = LoopBoundDetector(10)
        assert lbd.infer([0] * 32, [0] * 32).lanes(128) == 128


class TestReconvergenceStack:
    def test_push_pop_lifo(self):
        stack = ReconvergenceStack(4)
        stack.push(10, (0, 1))
        stack.push(20, (2,))
        entry = stack.pop()
        assert entry.pc == 20 and entry.lanes == (2,)
        assert stack.pop().pc == 10
        assert stack.pop() is None

    def test_overflow_drops(self):
        stack = ReconvergenceStack(2)
        assert stack.push(1, (0,))
        assert stack.push(2, (1,))
        assert not stack.push(3, (2,))
        assert stack.overflows == 1

    def test_depth_tracking(self):
        stack = ReconvergenceStack(8)
        stack.push(1, (0,))
        stack.push(2, (1,))
        stack.pop()
        stack.push(3, (2,))
        assert stack.max_depth_seen == 2
        assert len(stack) == 2


class TestShadowState:
    def test_tracks_values_and_next_pc(self):
        shadow = ShadowState()
        instr = Instruction(Opcode.LI, rd=3, imm=77)
        shadow.update(DynInstr(0, 5, instr, value=77, next_pc=6), 100, 90)
        assert shadow.regs[3] == 77
        assert shadow.next_pc == 6
        assert shadow.avail[3] == 90

    def test_invalid_regs_at(self):
        shadow = ShadowState()
        shadow.update(
            DynInstr(0, 5, Instruction(Opcode.LI, rd=3, imm=1), value=1, next_pc=6),
            100,
            250,
        )
        assert 3 in shadow.invalid_regs_at(200)
        assert 3 not in shadow.invalid_regs_at(300)


class TestSpeculativeInterpreter:
    def _program(self):
        b = ProgramBuilder()
        b.addi("r2", "r1", 1)       # 0
        b.load("r3", "r2")          # 1
        b.bnz("r3", "skip")         # 2
        b.addi("r4", "r4", 1)       # 3
        b.label("skip")
        b.halt()                    # 4
        return b.build()

    def test_inv_propagates(self):
        mem = MemoryImage()
        mem.allocate("pad", 4)
        interp = SpeculativeInterpreter(
            self._program(), mem, 0, [0] * 32, invalid_regs=[1]
        )
        step = interp.step()
        assert not step.value_valid
        assert not interp.valid[2]

    def test_inv_address_means_no_load(self):
        mem = MemoryImage()
        mem.allocate("pad", 4)
        interp = SpeculativeInterpreter(
            self._program(), mem, 0, [0] * 32, invalid_regs=[1]
        )
        interp.step()
        step = interp.step()
        assert not step.addr_valid
        assert not interp.valid[3]

    def test_inv_branch_falls_through(self):
        mem = MemoryImage()
        mem.allocate("pad", 4)
        interp = SpeculativeInterpreter(
            self._program(), mem, 0, [0] * 32, invalid_regs=[1]
        )
        interp.step()
        interp.step()
        step = interp.step()
        assert step.taken is False  # INV condition: not taken
        assert interp.pc == 3

    def test_valid_load_uses_callback(self):
        mem = MemoryImage()
        seg = mem.allocate("a", [0, 42])
        regs = [0] * 32
        regs[1] = seg.base  # r2 = base+8 after addi... use imm trick
        seen = []

        def load_cb(pc, addr):
            seen.append(addr)
            return 42, True

        interp = SpeculativeInterpreter(self._program(), mem, 0, regs)
        interp.step()
        interp.step(load_cb)
        assert seen == [seg.base + 1]
        assert interp.regs[3] == 42

    def test_stores_are_dropped(self):
        b = ProgramBuilder()
        b.store("r2", "r1")
        program = b.build()
        mem = MemoryImage()
        seg = mem.allocate("a", [7])
        regs = [0] * 32
        regs[1] = seg.base
        regs[2] = 99
        interp = SpeculativeInterpreter(program, mem, 0, regs)
        step = interp.step()
        assert step.addr == seg.base
        assert mem.read_word(seg.base) == 7  # unchanged

    def test_halts(self):
        mem = MemoryImage()
        mem.allocate("pad", 4)
        interp = SpeculativeInterpreter(self._program(), mem, 4, [0] * 32)
        assert interp.step().instr.opcode is Opcode.HALT
        assert interp.step() is None
