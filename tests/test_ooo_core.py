"""Timing-model tests for the out-of-order core."""

from dataclasses import replace

import pytest

from repro.config import CoreConfig, MemoryConfig, SimConfig
from repro.core import OoOCore
from repro.errors import SimulationError
from repro.isa import ProgramBuilder
from repro.memory import MemoryImage
from repro.prefetch.base import Technique

from conftest import build_counted_loop, build_indirect_kernel, quick_config


def run_core(program, mem, config=None, technique=None, trace=0):
    core = OoOCore(
        program, mem, config or quick_config(), technique=technique, trace_limit=trace
    )
    return core, core.run()


class TestBasicTiming:
    def test_ipc_bounded_by_width(self):
        program, mem = build_counted_loop(500)
        _, result = run_core(program, mem)
        assert 0 < result.ipc <= SimConfig().core.width

    def test_dependent_chain_serialises(self):
        """N dependent single-cycle adds need at least N cycles."""
        b = ProgramBuilder()
        b.li("r1", 0)
        for _ in range(200):
            b.addi("r1", "r1", 1)
        mem = MemoryImage()
        mem.allocate("pad", 1)
        _, result = run_core(b.build(), mem)
        assert result.cycles >= 200

    def test_independent_adds_overlap(self):
        b = ProgramBuilder()
        for reg in range(1, 5):
            b.li(f"r{reg}", 0)
        for k in range(200):
            b.addi(f"r{1 + k % 4}", f"r{1 + k % 4}", 1)
        mem = MemoryImage()
        mem.allocate("pad", 1)
        _, result = run_core(b.build(), mem)
        # Four independent chains on four ALUs: ~4x faster than serial.
        assert result.cycles < 200

    def test_commit_cycles_monotone(self):
        program, mem = build_counted_loop(50)
        core, _ = run_core(program, mem, trace=200)
        commits = [row[8] for row in core.trace]
        assert all(b >= a for a, b in zip(commits, commits[1:]))

    def test_issue_not_before_dispatch(self):
        program, mem = build_counted_loop(50)
        core, _ = run_core(program, mem, trace=200)
        for row in core.trace:
            _, _, _, fetch, dispatch, ready, issue, complete, commit = row
            assert fetch <= dispatch <= ready <= issue < complete < commit

    def test_single_run_enforced(self):
        program, mem = build_counted_loop(5)
        core, _ = run_core(program, mem)
        with pytest.raises(SimulationError):
            core.run()

    def test_max_instructions_respected(self):
        program, mem = build_counted_loop(100000)
        _, result = run_core(program, mem, quick_config(max_instructions=1000))
        assert result.instructions == 1000


class TestMemoryTiming:
    def test_cold_load_pays_dram_latency(self):
        mem = MemoryImage()
        seg = mem.allocate("a", [1])
        b = ProgramBuilder()
        b.li("r1", seg.base)
        b.load("r2", "r1")
        b.addi("r3", "r2", 1)  # depends on the load
        core, result = run_core(b.build(), mem, trace=10)
        load_row = core.trace[1]
        assert load_row[7] - load_row[6] >= SimConfig().memory.dram_latency

    def test_second_access_hits_l1(self):
        mem = MemoryImage()
        seg = mem.allocate("a", [1, 2])
        b = ProgramBuilder()
        b.li("r1", seg.base)
        b.load("r2", "r1")
        b.load("r3", "r1", 8)  # same line, must wait for fill then hit
        core, result = run_core(b.build(), mem, trace=10)
        assert result.demand_level_counts.get("MSHR", 0) == 1

    def test_memory_bound_kernel_is_slow(self):
        program, mem = build_indirect_kernel(n=4096, levels=2)
        _, result = run_core(program, mem)
        assert result.ipc < 1.0
        assert result.dram_accesses > 100

    def test_branch_mispredicts_counted(self):
        # Data-dependent branch on random values: unpredictable.
        import numpy as np

        rng = np.random.default_rng(9)
        mem = MemoryImage()
        seg = mem.allocate("a", rng.integers(0, 2, 2048))
        b = ProgramBuilder()
        b.li("r1", seg.base)
        b.li("r2", 0)
        b.li("r3", 2048)
        b.label("loop")
        b.shli("r4", "r2", 3)
        b.add("r4", "r1", "r4")
        b.load("r5", "r4")
        b.bnz("r5", "skip")
        b.addi("r6", "r6", 1)
        b.label("skip")
        b.addi("r2", "r2", 1)
        b.cmp_lt("r7", "r2", "r3")
        b.bnz("r7", "loop")
        _, result = run_core(b.build(), mem)
        assert result.branch_mispredictions > 100

    def test_stall_fraction_in_unit_range(self):
        program, mem = build_indirect_kernel(n=4096, levels=2)
        _, result = run_core(program, mem)
        assert 0.0 <= result.full_rob_stall_fraction <= 1.0


class TestWindowEffects:
    def test_smaller_rob_is_not_faster(self):
        results = {}
        for rob in (64, 512):
            program, mem = build_indirect_kernel(n=4096, levels=1)
            cfg = quick_config().with_core(CoreConfig().with_scaled_backend(rob))
            _, results[rob] = run_core(program, mem, cfg)
        assert results[512].ipc >= results[64].ipc

    def test_full_rob_stall_hook_fires(self):
        calls = []

        class Spy(Technique):
            name = "spy"

            def on_full_rob_stall(self, start, end, head):
                calls.append((start, end))

        program, mem = build_indirect_kernel(n=4096, levels=2)
        cfg = quick_config().with_core(CoreConfig().with_scaled_backend(128))
        run_core(program, mem, cfg, technique=Spy())
        assert calls
        for start, end in calls:
            assert end > start

    def test_commit_block_honoured(self):
        class Blocker(Technique):
            name = "blocker"

            def attach(self, core):
                super().attach(core)
                self.commit_blocked_until = 5000

        program, mem = build_counted_loop(100)
        _, result = run_core(program, mem, technique=Blocker())
        assert result.cycles >= 5000
        assert result.commit_block_cycles > 0

    def test_fetch_block_honoured(self):
        class FetchBlocker(Technique):
            name = "fblocker"

            def attach(self, core):
                super().attach(core)
                self.fetch_blocked_until = 3000

        program, mem = build_counted_loop(100)
        _, result = run_core(program, mem, technique=FetchBlocker())
        assert result.cycles >= 3000


class TestResultDerivedMetrics:
    def test_llc_mpki(self):
        program, mem = build_indirect_kernel(n=4096, levels=1)
        _, result = run_core(program, mem)
        assert result.llc_mpki() == pytest.approx(
            1000.0 * result.dram_accesses / result.instructions
        )

    def test_result_identity_fields(self):
        program, mem = build_counted_loop(10)
        core = OoOCore(program, mem, quick_config(), workload_name="wl-x")
        result = core.run()
        assert result.workload == "wl-x"
        assert result.technique == "ooo"

    def test_mshr_occupancy_within_capacity(self):
        program, mem = build_indirect_kernel(n=4096, levels=2)
        _, result = run_core(program, mem)
        assert 0 <= result.mean_mshr_occupancy <= SimConfig().memory.l1d_mshrs
