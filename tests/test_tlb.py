"""The virtual-memory axis: TLB model properties and differentials.

Three obligations, mirroring the PR's acceptance criteria:

1. Model laws — hypothesis properties over :class:`TLBLevel`/:class:`TLB`
   (LRU occupancy never exceeds associativity, lookup conservation,
   walk latency monotone in page-table depth) plus targeted unit tests
   for promotion, walk coalescing, and the drop policy.
2. tlb-off differential — the default configuration must be
   bit-identical (cycles, counters, trace digests) to a spec that
   spells the TLB out as disabled, across the workload x technique
   matrix: translation off is a no-op, not merely "close".
3. tlb-on audit — with the TLB enabled the ``mem.tlb.*`` books must
   balance under the registered audit laws on real runs, walks must
   actually happen, and the drop policy must hold walk conservation
   with a non-zero dropped count.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SimConfig, TLBConfig
from repro.errors import ConfigError
from repro.memory.hierarchy import LEVEL_TLB_DROP, MemoryHierarchy
from repro.memory.tlb import TLB, TLBLevel
from repro.experiments import run_simulation
from repro.experiments.spec import RunSpec

MATRIX = [
    (workload, technique)
    for workload in ("camel", "nas_is")
    for technique in ("ooo", "vr", "dvr")
]


def _tlb_hierarchy(tlb_policy="walk", **tlb_kwargs):
    cfg = SimConfig().memory
    cfg = dataclasses.replace(cfg, tlb=TLBConfig(enable=True, **tlb_kwargs))
    return MemoryHierarchy(cfg, tlb_policy=tlb_policy)


# ---------------------------------------------------------------------------
# Model laws (hypothesis).


class TestTLBLevelProperties:
    @given(
        entries_sets=st.sampled_from([(8, 2), (16, 4), (64, 4), (32, 8)]),
        pages=st.lists(st.integers(min_value=0, max_value=1 << 20), max_size=200),
    )
    @settings(max_examples=60, deadline=None)
    def test_lru_never_exceeds_associativity(self, entries_sets, pages):
        entries, assoc = entries_sets
        level = TLBLevel("t", entries, assoc)
        for cycle, page in enumerate(pages):
            if level.probe(page) is None:
                level.fill(page, cycle)
        assert all(n <= assoc for n in level.occupancy().values())

    @given(
        pages=st.lists(st.integers(min_value=0, max_value=1 << 14), max_size=200)
    )
    @settings(max_examples=60, deadline=None)
    def test_lookup_conservation(self, pages):
        level = TLBLevel("t", 16, 4)
        for cycle, page in enumerate(pages):
            if level.probe(page) is None:
                level.fill(page, cycle)
        assert level.hits + level.misses == level.lookups
        assert level.lookups == len(pages)

    @given(
        addr=st.integers(min_value=0, max_value=1 << 30),
        depths=st.sampled_from([(1, 2), (2, 4), (3, 5), (1, 6)]),
    )
    @settings(max_examples=30, deadline=None)
    def test_walk_latency_monotone_in_depth(self, addr, depths):
        shallow_levels, deep_levels = depths
        ready = {}
        for levels in (shallow_levels, deep_levels):
            h = _tlb_hierarchy(walk_levels=levels)
            ready[levels] = h.tlb.translate(addr, 0)
        # A deeper radix tree is never faster to walk: each extra level
        # adds at least one dependent cached load.
        assert ready[deep_levels] >= ready[shallow_levels]
        assert ready[shallow_levels] > 0  # cold walk is never free


class TestTLBUnits:
    def test_l1_hit_is_free(self):
        h = _tlb_hierarchy()
        tlb = h.tlb
        done = tlb.translate(0x2000, 0)  # cold: walks
        assert tlb.walks == 1
        assert tlb.translate(0x2010, done) == done  # same page, L1 hit
        assert tlb.walks == 1 and tlb.l1.hits == 1

    def test_l2_hit_promotes_into_l1(self):
        h = _tlb_hierarchy(l1_entries=2, l1_assoc=1, page_bytes=4096)
        tlb = h.tlb
        t0 = tlb.translate(0x0000, 0)
        # Evict page 0 from the 2-entry L1 TLB (pages 2 and 4 map to
        # its set with assoc 1... fill both sets).
        tlb.translate(0x2000, t0)
        tlb.translate(0x4000, t0)
        walks = tlb.walks
        l2_hits = tlb.l2.hits
        ready = tlb.translate(0x0000, t0)  # L1 miss, L2 hit: no new walk
        assert tlb.walks == walks
        assert tlb.l2.hits == l2_hits + 1
        assert ready >= t0 + tlb.l2_latency
        # ...and the entry is back in the L1 TLB.
        assert tlb.l1.probe(0) is not None

    def test_inflight_walk_coalesces(self):
        h = _tlb_hierarchy()
        tlb = h.tlb
        done = tlb.translate(0x8000, 0)
        assert done > 0 and tlb.walks == 1
        # A second translate for the same page before the walk finishes
        # counts as a hit and waits for the fill — never a second walk.
        ready = tlb.translate(0x8040, 1)
        assert ready == done
        assert tlb.walks == 1
        assert tlb.l1.hits == 1

    def test_drop_policy_discards_speculative_misses(self):
        h = _tlb_hierarchy(tlb_policy="drop")
        tlb = h.tlb
        result = h.access(0x3000, 0, source="runahead", prefetch=True)
        assert result.level == LEVEL_TLB_DROP
        assert tlb.walks == 0
        assert tlb.dropped_prefetches == 1
        # No cache traffic and no prefetch bookkeeping for the drop.
        assert h.stats.prefetches_by_source == {}
        assert h.l1.hits + h.l1.misses == 0
        # A demand load to the same page still walks.
        h.access(0x3000, 0)
        assert tlb.walks == 1
        # Walk conservation holds by construction.
        assert tlb.walks == tlb.l2.misses - tlb.dropped_prefetches

    def test_walk_policy_lets_speculative_accesses_walk(self):
        h = _tlb_hierarchy(tlb_policy="walk")
        result = h.access(0x3000, 0, source="runahead", prefetch=True)
        assert result.level != LEVEL_TLB_DROP
        assert h.tlb.walks == 1
        assert h.tlb.dropped_prefetches == 0

    def test_walk_loads_go_through_the_caches(self):
        h = _tlb_hierarchy(walk_levels=4)
        h.tlb.translate(0x0000, 0)
        # Cold walk: the leaf PTE load (at least) misses to DRAM under
        # the walker's source tag...
        assert h.stats.dram_by_source.get("ptw", 0) >= 1
        dram_after_first = h.stats.dram_by_source["ptw"]
        # ...and a neighbouring page's walk reuses the cached upper
        # levels instead of re-fetching all four.
        h.tlb.translate(0x1000, 10_000)
        assert h.stats.dram_by_source["ptw"] - dram_after_first < 4

    def test_tlb_config_validation(self):
        with pytest.raises(ConfigError):
            TLBConfig(page_bytes=3000)  # not a power of two
        with pytest.raises(ConfigError):
            TLBConfig(l1_entries=10, l1_assoc=4)  # not divisible
        with pytest.raises(ConfigError):
            TLBConfig(walk_levels=0)
        from repro.config import RunaheadConfig

        with pytest.raises(ConfigError):
            RunaheadConfig(tlb_policy="sometimes")

    def test_ideal_memory_has_no_tlb(self):
        cfg = dataclasses.replace(
            SimConfig().memory, tlb=TLBConfig(enable=True)
        )
        assert MemoryHierarchy(cfg, ideal=True).tlb is None


# ---------------------------------------------------------------------------
# tlb-off differential: the default path must be bit-identical.


@pytest.mark.parametrize("workload,technique", MATRIX)
def test_tlb_off_is_bit_identical(workload, technique):
    plain = RunSpec(workload, technique=technique, max_instructions=1500, trace=True)
    explicit = RunSpec(
        workload,
        technique=technique,
        max_instructions=1500,
        trace=True,
        overrides=(
            ("memory.tlb.enable", "false"),
            ("runahead.tlb_policy", "walk"),
        ),
    )
    a = run_simulation(plain)
    b = run_simulation(explicit)
    assert a.cycles == b.cycles
    assert a.instructions == b.instructions
    assert a.trace_digest == b.trace_digest
    assert a.counters == b.counters
    assert not any(k.startswith("mem.tlb.") for k in a.counters)


# ---------------------------------------------------------------------------
# tlb-on: books balance on real runs (audit=True raises on violation).


@pytest.mark.parametrize("technique", ["ooo", "vr", "dvr"])
def test_tlb_on_audit_balances(technique):
    spec = RunSpec(
        "camel",
        technique=technique,
        max_instructions=3000,
        overrides=(("memory.tlb.enable", "true"),),
    )
    result = run_simulation(spec.resolved(), audit=True)
    counters = result.counters
    assert counters["mem.tlb.walks"] > 0
    assert counters["mem.tlb.l1.lookups"] > 0
    assert (
        counters["mem.tlb.l1.hits"] + counters["mem.tlb.l1.misses"]
        == counters["mem.tlb.l1.lookups"]
    )


def test_tlb_on_drop_policy_audit():
    spec = RunSpec(
        "camel",
        technique="dvr",
        max_instructions=3000,
        overrides=(
            ("memory.tlb.enable", "true"),
            ("runahead.tlb_policy", "drop"),
        ),
    )
    result = run_simulation(spec.resolved(), audit=True)
    counters = result.counters
    assert counters["mem.tlb.dropped_prefetches"] > 0
    assert (
        counters["mem.tlb.walks"]
        == counters["mem.tlb.l2.misses"] - counters["mem.tlb.dropped_prefetches"]
    )


def test_tlb_on_cycle_core():
    # The runahead technique runs on CycleCore — its issue path must
    # survive translated demand loads too.
    spec = RunSpec(
        "camel",
        technique="runahead",
        max_instructions=3000,
        overrides=(("memory.tlb.enable", "true"),),
    )
    result = run_simulation(spec.resolved(), audit=True)
    assert result.counters["mem.tlb.walks"] > 0


def test_drop_policy_costs_runahead_coverage():
    # The paper-faithful question the knob exists to ask: forbidding
    # speculative walks must not *help* a runahead technique.
    base = RunSpec(
        "camel",
        technique="dvr",
        max_instructions=3000,
        overrides=(("memory.tlb.enable", "true"),),
    )
    drop = RunSpec(
        "camel",
        technique="dvr",
        max_instructions=3000,
        overrides=(
            ("memory.tlb.enable", "true"),
            ("runahead.tlb_policy", "drop"),
        ),
    )
    walk_cycles = run_simulation(base).cycles
    drop_cycles = run_simulation(drop).cycles
    assert drop_cycles >= walk_cycles
