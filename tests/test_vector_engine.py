"""Tests for the timed vector-chain executor (VIR/VRAT/gather model)."""

import numpy as np
import pytest

from repro.config import MemoryConfig
from repro.isa import ProgramBuilder
from repro.memory import MemoryHierarchy, MemoryImage
from repro.runahead.reconvergence import ReconvergenceStack
from repro.runahead.vector_engine import VectorChainRun


def chain_setup(n=512, seed=1):
    """A[i] striding -> B[A[i]] indirect, as static code."""
    rng = np.random.default_rng(seed)
    mem = MemoryImage()
    a = mem.allocate("A", rng.integers(0, n, n))
    bseg = mem.allocate("B", rng.integers(0, 1 << 20, n))
    b = ProgramBuilder()
    b.label("loop")
    b.load("r4", "r3")          # 0: A[i]   <- trigger (r3 holds address)
    b.shli("r5", "r4", 3)       # 1
    b.add("r5", "r6", "r5")     # 2: r6 = B base
    b.load("r7", "r5")          # 3: B[A[i]]  (FLR)
    b.addi("r3", "r3", 8)       # 4
    b.jmp("loop")               # 5
    program = b.build()
    hierarchy = MemoryHierarchy(MemoryConfig.scaled())
    regs = [0] * 32
    regs[3] = a.base
    regs[6] = bseg.base
    return program, mem, hierarchy, regs, a, bseg


def make_run(program, mem, hierarchy, regs, lane_addresses, **kwargs):
    defaults = dict(
        start_pc=0,
        start_cycle=0,
        end_pc=3,
        execute_end_pc=True,
        stop_pcs=(0,),
        vector_width=8,
        timeout=200,
    )
    defaults.update(kwargs)
    return VectorChainRun(
        program, mem, hierarchy, regs, lane_addresses=lane_addresses, **defaults
    )


class TestBasicChain:
    def test_prefetches_both_levels(self):
        program, mem, hierarchy, regs, a, bseg = chain_setup()
        lanes = [a.base + 8 * (l + 1) for l in range(16)]
        run = make_run(program, mem, hierarchy, regs, lanes)
        run.run_to_completion()
        assert run.finished
        # 16 A-element accesses + 16 B-element accesses.
        assert run.prefetches == 32

    def test_indirect_addresses_are_correct(self):
        program, mem, hierarchy, regs, a, bseg = chain_setup()
        lanes = [a.base + 8 * (l + 1) for l in range(8)]
        run = make_run(program, mem, hierarchy, regs, lanes)
        run.run_to_completion()
        # The B-level lines prefetched must match B[A[i]] functionally.
        expected_lines = set()
        for l in range(8):
            idx = mem.read_word(a.base + 8 * (l + 1))
            expected_lines.add(hierarchy.line_of(bseg.base + 8 * idx))
        for line in expected_lines:
            assert hierarchy.l1.contains(line, 1 << 60)

    def test_second_level_waits_for_first(self):
        program, mem, hierarchy, regs, a, bseg = chain_setup()
        lanes = [a.base + 8 * (l + 1) for l in range(8)]
        run = make_run(program, mem, hierarchy, regs, lanes)
        run.run_to_completion()
        # One DRAM round trip for level 1 data before level 2 issues.
        assert run.finish_time >= hierarchy.dram.latency

    def test_lane_count_zero_is_noop(self):
        program, mem, hierarchy, regs, a, bseg = chain_setup()
        run = make_run(program, mem, hierarchy, regs, [])
        run.run_to_completion()
        assert run.finished and run.prefetches == 0

    def test_vector_copies_chunked_by_width(self):
        program, mem, hierarchy, regs, a, bseg = chain_setup()
        lanes = [a.base + 8 * (l + 1) for l in range(16)]
        run = make_run(program, mem, hierarchy, regs, lanes, vector_width=8)
        run.run_to_completion()
        # 16 lanes / 8-wide = 2 copies per vector instruction.
        assert run.copies_issued >= 2 * 2  # at least both loads chunked

    def test_stop_at_stride_pc_revisit(self):
        program, mem, hierarchy, regs, a, bseg = chain_setup()
        lanes = [a.base + 8 * (l + 1) for l in range(8)]
        run = make_run(program, mem, hierarchy, regs, lanes, end_pc=None)
        run.run_to_completion()
        # Without an FLR endpoint the loop-back to pc 0 terminates it.
        assert run.finished
        assert run.instructions < 20

    def test_timeout_bounds_execution(self):
        b = ProgramBuilder()
        b.load("r4", "r3")
        b.label("spin")
        b.addi("r5", "r4", 1)
        b.jmp("spin")
        program = b.build()
        mem = MemoryImage()
        seg = mem.allocate("A", list(range(64)))
        hierarchy = MemoryHierarchy(MemoryConfig.scaled())
        regs = [0] * 32
        regs[3] = seg.base
        run = make_run(
            program, mem, hierarchy, regs, [seg.base + 8], end_pc=None, timeout=50
        )
        run.run_to_completion()
        assert run.finished

    def test_incremental_advance(self):
        program, mem, hierarchy, regs, a, bseg = chain_setup()
        lanes = [a.base + 8 * (l + 1) for l in range(16)]
        run = make_run(program, mem, hierarchy, regs, lanes)
        run.advance_to(1)
        mid_prefetches = run.prefetches
        assert not run.finished
        run.advance_to(1 << 60)
        assert run.finished
        assert run.prefetches >= mid_prefetches

    def test_unmapped_lane_invalidated(self):
        program, mem, hierarchy, regs, a, bseg = chain_setup()
        lanes = [a.base + 8, -999]
        run = make_run(program, mem, hierarchy, regs, lanes)
        run.run_to_completion()
        assert run.lanes_invalidated >= 1


def divergent_setup(n=256, seed=2):
    """Per-lane branch: lanes with odd A values take a different path."""
    rng = np.random.default_rng(seed)
    mem = MemoryImage()
    a = mem.allocate("A", rng.integers(0, 2, n))  # 0/1 flags
    bseg = mem.allocate("B", rng.integers(0, 1 << 20, n))
    c = mem.allocate("C", rng.integers(0, 1 << 20, n))
    b = ProgramBuilder()
    b.load("r4", "r3")          # 0: flag = A[i]  <- trigger
    b.shli("r5", "r4", 3)       # 1: per-lane offset
    b.bnz("r4", "odd")          # 2
    b.add("r6", "r8", "r5")     # 3: B path (r8 = B base)
    b.load("r7", "r6")          # 4
    b.jmp("join")               # 5
    b.label("odd")
    b.add("r6", "r9", "r5")     # 6: C path (r9 = C base)
    b.load("r7", "r6")          # 7
    b.label("join")
    b.addi("r3", "r3", 8)       # 8
    b.jmp("end")                # 9
    b.label("end")
    b.halt()
    program = b.build()
    hierarchy = MemoryHierarchy(MemoryConfig.scaled())
    regs = [0] * 32
    regs[3] = a.base
    regs[8] = bseg.base
    regs[9] = c.base
    return program, mem, hierarchy, regs, a


class TestDivergence:
    def _lane_flags(self, mem, a, lanes):
        return [mem.read_word(addr) for addr in lanes]

    def test_mask_off_invalidates_minority(self):
        program, mem, hierarchy, regs, a = divergent_setup()
        lanes = [a.base + 8 * (l + 1) for l in range(16)]
        flags = self._lane_flags(mem, a, lanes)
        run = make_run(
            program, mem, hierarchy, regs, lanes, end_pc=None, reconvergence=None
        )
        run.run_to_completion()
        # Lanes disagreeing with lane 0 are invalidated (VR semantics).
        minority = sum(1 for f in flags if f != flags[0])
        assert run.lanes_invalidated >= minority

    def test_reconvergence_follows_both_paths(self):
        program, mem, hierarchy, regs, a = divergent_setup()
        lanes = [a.base + 8 * (l + 1) for l in range(16)]
        flags = self._lane_flags(mem, a, lanes)
        assert 0 < sum(flags) < 16  # genuinely divergent
        stack = ReconvergenceStack(8)
        run = make_run(
            program, mem, hierarchy, regs, lanes, end_pc=None, reconvergence=stack
        )
        run.run_to_completion()
        # Every lane issued its trigger load AND its per-path load.
        assert run.prefetches == 16 + 16
        assert run.lanes_invalidated == 0
        assert stack.max_depth_seen >= 1

    def test_uniform_branch_no_divergence(self):
        program, mem, hierarchy, regs, a = divergent_setup()
        # Pick only even-flag lanes.
        lanes = []
        addr = a.base
        while len(lanes) < 8:
            addr += 8
            if mem.read_word(addr) == 0:
                lanes.append(addr)
        stack = ReconvergenceStack(8)
        run = make_run(
            program, mem, hierarchy, regs, lanes, end_pc=None, reconvergence=stack
        )
        run.run_to_completion()
        assert stack.max_depth_seen == 0


class TestEndStateCapture:
    def test_captures_per_lane_registers(self):
        program, mem, hierarchy, regs, a, bseg = chain_setup()
        lanes = [a.base + 8 * (l + 1) for l in range(4)]
        run = make_run(
            program,
            mem,
            hierarchy,
            regs,
            lanes,
            end_pc=3,
            execute_end_pc=False,
            capture_end_states=True,
        )
        run.run_to_completion()
        assert sorted(run.end_states) == [0, 1, 2, 3]
        for lane, state in run.end_states.items():
            idx = mem.read_word(lanes[lane])
            assert state[5] == bseg.base + 8 * idx  # r5 = &B[A[i]]


class TestSecondaryStride:
    def test_lockstep_array_vectorised_by_own_stride(self):
        rng = np.random.default_rng(3)
        mem = MemoryImage()
        a = mem.allocate("A", rng.integers(0, 256, 256))
        w = mem.allocate("W", rng.integers(0, 256, 256))
        b = ProgramBuilder()
        b.load("r4", "r3")   # 0: A[i] trigger
        b.load("r5", "r10")  # 1: W[i] — independent but striding
        b.add("r6", "r4", "r5")
        b.jmp("out")
        b.label("out")
        b.halt()
        program = b.build()
        hierarchy = MemoryHierarchy(MemoryConfig.scaled())
        regs = [0] * 32
        regs[3] = a.base
        regs[10] = w.base
        lanes = [a.base + 8 * (l + 1) for l in range(8)]
        run = make_run(
            program,
            mem,
            hierarchy,
            regs,
            lanes,
            end_pc=None,
            stride_map={1: 8},
        )
        run.run_to_completion()
        # W accesses issued for future iterations, not just W[i].
        line = hierarchy.line_of(w.base + 8 * 8)
        assert hierarchy.l1.contains(line, 1 << 60)

    def test_scalar_run_exhaustion_terminates(self):
        mem = MemoryImage()
        a = mem.allocate("A", list(range(128)))
        b = ProgramBuilder()
        b.load("r4", "r3")  # trigger
        for _ in range(40):
            b.addi("r5", "r5", 1)  # long scalar tail
        b.halt()
        program = b.build()
        hierarchy = MemoryHierarchy(MemoryConfig.scaled())
        regs = [0] * 32
        regs[3] = a.base
        run = make_run(
            program,
            mem,
            hierarchy,
            regs,
            [a.base + 8],
            end_pc=None,
            max_scalar_run=8,
        )
        run.run_to_completion()
        assert run.instructions < 20
