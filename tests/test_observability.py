"""Unit and property tests for ``repro.observability``.

Covers the counter registry, the ring-buffered event trace, the hook
facade, the stats exporter, and the microarchitectural counter
invariants every simulation must satisfy (retired <= fetched, positive
cycles, CPI stack summing to total cycles, non-negative values, and
monotonicity across mid-run hook snapshots).
"""

from __future__ import annotations

import io
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.experiments.runner import run_simulation
from repro.observability import (
    CounterRegistry,
    EventTrace,
    Observability,
    STATS_SCHEMA,
    stats_payload,
    subtree,
    validate_stats,
    write_stats,
)
from repro.observability.counters import NAME_PATTERN
from repro.observability.trace import EV_FETCH, EV_RETIRE, TRACE_FIELDS

# -- CounterRegistry -----------------------------------------------------------

_SEGMENT = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_-", min_size=1, max_size=8
)
_NAMES = st.lists(_SEGMENT, min_size=2, max_size=4).map(".".join)


class TestCounterRegistry:
    def test_counter_created_on_first_use(self):
        reg = CounterRegistry()
        assert "a.b" not in reg
        reg.inc("a.b")
        assert "a.b" in reg
        assert reg.get("a.b") == 1

    def test_inc_set_get(self):
        reg = CounterRegistry()
        reg.inc("core.x", 5)
        reg.inc("core.x", 2)
        assert reg.get("core.x") == 7
        reg.set("core.x", 3)
        assert reg.get("core.x") == 3
        assert reg.get("core.missing", default=-1) == -1

    @pytest.mark.parametrize(
        "bad", ["", "flat", ".leading", "trailing.", "a..b", "a b.c", "a.b!"]
    )
    def test_invalid_names_rejected(self, bad):
        with pytest.raises(ReproError):
            CounterRegistry().counter(bad)

    def test_set_many_with_prefix(self):
        reg = CounterRegistry()
        reg.set_many({"main": 3, "runahead": 9}, prefix="mem.dram.accesses.")
        assert reg.get("mem.dram.accesses.runahead") == 9

    def test_snapshot_is_sorted_and_detached(self):
        reg = CounterRegistry()
        reg.set("b.z", 1)
        reg.set("a.y", 2)
        snap = reg.snapshot()
        assert list(snap) == ["a.y", "b.z"]
        reg.inc("a.y")
        assert snap["a.y"] == 2  # the snapshot does not alias the registry

    def test_subtree_strips_prefix(self):
        reg = CounterRegistry()
        reg.set("mem.l1.hits", 10)
        reg.set("mem.l1.misses", 4)
        reg.set("core.cycles", 99)
        assert reg.subtree("mem.l1") == {"hits": 10, "misses": 4}
        assert subtree(reg.snapshot(), "mem.l1") == {"hits": 10, "misses": 4}

    def test_as_tree_nests(self):
        reg = CounterRegistry()
        reg.set("core.stall.episodes", 2)
        reg.set("core.cycles", 7)
        assert reg.as_tree() == {"core": {"cycles": 7, "stall": {"episodes": 2}}}

    @given(names=st.lists(_NAMES, min_size=1, max_size=20, unique=True))
    @settings(max_examples=50, deadline=None)
    def test_iteration_matches_snapshot(self, names):
        reg = CounterRegistry()
        for i, name in enumerate(names):
            reg.set(name, i)
        assert dict(iter(reg)) == reg.snapshot()
        assert len(reg) == len(names)

    @given(
        values=st.dictionaries(
            _NAMES, st.integers(min_value=0, max_value=10**9), max_size=12
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_valid_names_always_accepted(self, values):
        reg = CounterRegistry()
        reg.set_many(values)
        for name, value in values.items():
            assert NAME_PATTERN.match(name)
            assert reg.get(name) == value


# -- EventTrace ----------------------------------------------------------------

class TestEventTrace:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventTrace(capacity=0)

    def test_ring_eviction_keeps_digest_whole_stream(self):
        big = EventTrace(capacity=1000)
        small = EventTrace(capacity=4)
        for i in range(50):
            big.emit(i, EV_FETCH, pc=i, info=1)
            small.emit(i, EV_FETCH, pc=i, info=1)
        assert big.digest() == small.digest()
        assert small.emitted == 50 and len(small) == 4
        assert small.dropped == 46
        assert [e.seq for e in small.events()] == [46, 47, 48, 49]

    def test_digest_sensitive_to_every_field(self):
        base = EventTrace()
        base.emit(5, EV_FETCH, pc=10, info=2)
        for cycle, kind, pc, info in [
            (6, EV_FETCH, 10, 2),
            (5, EV_RETIRE, 10, 2),
            (5, EV_FETCH, 11, 2),
            (5, EV_FETCH, 10, 3),
        ]:
            other = EventTrace()
            other.emit(cycle, kind, pc=pc, info=info)
            assert other.digest() != base.digest()

    def test_jsonl_roundtrip(self):
        trace = EventTrace()
        trace.emit(1, EV_FETCH, pc=4, info=7)
        trace.emit(2, EV_RETIRE, pc=4, info=7)
        buf = io.StringIO()
        assert trace.write_jsonl(buf) == 2
        rows = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert rows[0] == {"seq": 0, "cycle": 1, "kind": "fetch", "pc": 4, "info": 7}
        assert tuple(rows[1]) == TRACE_FIELDS

    def test_csv_has_header_and_rows(self):
        trace = EventTrace()
        trace.emit(1, EV_FETCH)
        buf = io.StringIO()
        assert trace.write_csv(buf) == 1
        lines = buf.getvalue().strip().splitlines()
        assert lines[0] == ",".join(TRACE_FIELDS)
        assert lines[1] == "0,1,fetch,0,0"


# -- Observability hooks -------------------------------------------------------

class TestObservabilityFacade:
    def test_trace_opt_in(self):
        assert Observability().trace is None
        assert Observability(trace=True).trace is not None

    @pytest.mark.parametrize("interval", [0, -5])
    def test_hook_intervals_must_be_positive(self, interval):
        obs = Observability()
        with pytest.raises(ValueError):
            obs.on_cycle(interval, lambda c, r: None)
        with pytest.raises(ValueError):
            obs.on_interval(interval, lambda c, r: None)

    def test_maybe_fire_catches_up_over_skipped_boundaries(self):
        obs = Observability()
        fired = []
        obs.on_interval(10, lambda cycle, reg: fired.append(cycle))
        publishes = []
        obs.maybe_fire(5, 100, publishes.append)   # not due
        obs.maybe_fire(37, 200, publishes.append)  # crosses 10, 20, 30 at once
        obs.maybe_fire(39, 300, publishes.append)  # next boundary is now 40
        assert fired == [200]
        assert len(publishes) == 1

    def test_sample_every_collects_snapshots(self):
        obs = Observability()
        obs.sample_every(1000)
        result = run_simulation(
            "camel", "vr", max_instructions=3000, observability=obs
        )
        assert len(obs.samples) >= 2
        for cycle, snap in obs.samples:
            assert cycle > 0
            assert snap["core.commit.instructions"] <= result.instructions


# -- simulation counter invariants ---------------------------------------------

_COMBOS = [("camel", "ooo"), ("camel", "vr"), ("nas_is", "dvr"), ("nas_is", "pre")]


@pytest.fixture(scope="module")
def sampled_runs():
    runs = {}
    for workload, technique in _COMBOS:
        obs = Observability()
        obs.sample_every(500)
        result = run_simulation(
            workload, technique, max_instructions=2500, observability=obs
        )
        runs[(workload, technique)] = (result, obs.samples)
    return runs


@pytest.mark.parametrize("combo", _COMBOS, ids=lambda c: f"{c[0]}-{c[1]}")
class TestCounterInvariants:
    def test_retired_never_exceeds_fetched(self, sampled_runs, combo):
        result, samples = sampled_runs[combo]
        assert result.counters["core.commit.instructions"] <= result.counters[
            "core.fetch.instructions"
        ]
        for _, snap in samples:
            assert snap["core.commit.instructions"] <= snap["core.fetch.instructions"]

    def test_cycles_positive(self, sampled_runs, combo):
        result, samples = sampled_runs[combo]
        assert result.counters["core.cycles"] > 0
        for _, snap in samples:
            assert snap["core.cycles"] > 0

    def test_cpi_stack_sums_to_total_cycles(self, sampled_runs, combo):
        result, _ = sampled_runs[combo]
        stack = subtree(result.counters, "core.cpi_stack")
        assert stack
        assert sum(stack.values()) == pytest.approx(result.counters["core.cycles"])

    def test_counters_non_negative(self, sampled_runs, combo):
        result, samples = sampled_runs[combo]
        for name, value in result.counters.items():
            assert value >= 0, name
        for _, snap in samples:
            for name, value in snap.items():
                assert value >= 0, name

    def test_counters_monotone_across_samples(self, sampled_runs, combo):
        _, samples = sampled_runs[combo]
        assert len(samples) >= 2
        for (_, before), (_, after) in zip(samples, samples[1:]):
            for name, value in before.items():
                assert after.get(name, 0) >= value, name


# -- stats export schema -------------------------------------------------------

class TestStatsSchema:
    @pytest.fixture(scope="class")
    def result(self):
        return run_simulation("camel", "vr", max_instructions=2000, trace=True)

    def test_roundtrip_through_json(self, result, tmp_path):
        path = tmp_path / "stats.json"
        written = write_stats(result, str(path))
        parsed = validate_stats(path.read_text())
        assert parsed == written
        assert parsed["schema"] == STATS_SCHEMA
        assert parsed["trace"]["digest"] == result.trace_digest

    def test_validate_rejects_bad_documents(self, result):
        good = stats_payload(result)
        bad_cases = [
            {},
            {**good, "schema": "repro.stats/999"},
            {**good, "cycles": 0},
            {**good, "ipc": good["ipc"] * 2},
            {**good, "counters": {"flat": 1}},
            {**good, "counters": {"core.cycles": -1}},
            {**good, "trace": {"enabled": True, "digest": None, "events": 5}},
            "not json {",
        ]
        for bad in bad_cases:
            with pytest.raises(ReproError):
                validate_stats(bad)
