"""Workload construction and functional-correctness tests.

Each kernel is validated two ways: it builds and runs through the
timing core, and (at tiny sizes) it runs functionally to completion and
produces the algorithmically expected memory contents.
"""

import numpy as np
import pytest

from repro.core import FunctionalCore, OoOCore
from repro.errors import WorkloadError
from repro.isa.semantics import hash64
from repro.workloads import (
    GAP_WORKLOADS,
    HPC_DB_WORKLOADS,
    WORKLOAD_NAMES,
    build_workload,
)

from conftest import quick_config


class TestRegistry:
    def test_names_cover_paper_suite(self):
        assert len(WORKLOAD_NAMES) == 13
        assert set(GAP_WORKLOADS) == {"bc", "bfs", "cc", "pr", "sssp"}
        assert "graph500" in HPC_DB_WORKLOADS

    def test_unknown_workload(self):
        with pytest.raises(WorkloadError):
            build_workload("quake3")

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_builds_and_simulates(self, name):
        wl = build_workload(name, size="tiny")
        result = OoOCore(
            wl.program, wl.memory, quick_config(max_instructions=2000), workload_name=name
        ).run()
        assert result.instructions > 100
        assert result.demand_loads > 0

    @pytest.mark.parametrize("name", ["bfs", "cc", "pr"])
    def test_gap_input_selection(self, name):
        wl = build_workload(name, input_name="UR", size="tiny")
        assert wl.meta["input"] == "UR"

    def test_fresh_rebuild(self):
        wl = build_workload("camel", size="tiny")
        again = wl.fresh()
        assert again.name == wl.name
        assert again.memory is not wl.memory


class TestFunctionalCorrectness:
    def test_camel_counts_conserved(self):
        wl = build_workload("camel", size="tiny")
        n = wl.meta["n"]
        FunctionalCore(wl.program, wl.memory).run_to_completion()
        counts = wl.memory.segment("C").data
        assert int(counts.sum()) == n  # one increment per iteration

    def test_camel_matches_reference(self):
        wl = build_workload("camel", size="tiny")
        n = wl.meta["n"]
        mask = n - 1
        a = wl.memory.segment("A").data.copy()
        b = wl.memory.segment("B").data.copy()
        expected = np.zeros(n, dtype=np.int64)
        for i in range(n):
            h1 = hash64(int(a[i])) & mask
            h2 = hash64(int(b[h1])) & mask
            expected[h2] += 1
        FunctionalCore(wl.program, wl.memory).run_to_completion()
        assert np.array_equal(wl.memory.segment("C").data, expected)

    def test_nas_is_histogram(self):
        wl = build_workload("nas_is", size="tiny")
        keys = wl.memory.segment("K").data.copy()
        FunctionalCore(wl.program, wl.memory).run_to_completion()
        expected = np.bincount(keys, minlength=len(keys))
        assert np.array_equal(wl.memory.segment("CNT").data, expected)

    def test_random_access_xor(self):
        wl = build_workload("random_access", size="tiny")
        idx = wl.memory.segment("R").data.copy()
        table_before = wl.memory.segment("T").data.copy()
        FunctionalCore(wl.program, wl.memory).run_to_completion()
        table_after = wl.memory.segment("T").data
        expected = table_before.copy()
        for i in idx:
            expected[i] ^= i
        assert np.array_equal(table_after, expected)

    def test_hashjoin_sum_matches_reference(self):
        wl = build_workload("hj2", size="tiny")
        n = wl.meta["n"]
        mask = n - 1
        keys = wl.memory.segment("K").data.copy()
        table = wl.memory.segment("HT").data.copy()
        expected = 0
        for key in keys:
            v = int(key)
            for _ in range(2):
                v = int(table[hash64(v) & mask])
            expected += v
        FunctionalCore(wl.program, wl.memory).run_to_completion()
        assert int(wl.memory.segment("OUT").data[0]) == expected

    def test_kangaroo_increments(self):
        wl = build_workload("kangaroo", size="tiny")
        FunctionalCore(wl.program, wl.memory).run_to_completion()
        assert int(wl.memory.segment("D").data.sum()) == wl.meta["n"]

    def test_nas_cg_spmv_matches_numpy(self):
        wl = build_workload("nas_cg", size="tiny")
        rows = wl.meta["rows"]
        row = wl.memory.segment("ROW").data.copy()
        col = wl.memory.segment("COL").data.copy()
        val = wl.memory.segment("VAL").data.copy()
        x = wl.memory.segment("X").data.copy()
        FunctionalCore(wl.program, wl.memory).run_to_completion()
        y = wl.memory.segment("Y").data
        for r in (0, rows // 2, rows - 1):
            s, e = row[r], row[r + 1]
            assert y[r] == pytest.approx(float(np.dot(val[s:e], x[col[s:e]])))

    def test_bfs_expands_frontier_correctly(self):
        wl = build_workload("bfs", size="tiny")
        frontier = wl.memory.segment("WL").data.copy()
        visited_before = wl.memory.segment("VISITED").data.copy()
        row = wl.memory.segment("ROW").data.copy()
        col = wl.memory.segment("COL").data.copy()
        FunctionalCore(wl.program, wl.memory).run_to_completion()
        visited_after = wl.memory.segment("VISITED").data
        # Every neighbour of the frontier is now visited.
        for u in frontier:
            for v in col[row[u] : row[u + 1]]:
                assert visited_after[v] == 1
        # Nothing was ever un-visited.
        assert np.all(visited_after >= visited_before)

    def test_graph500_sets_parents(self):
        wl = build_workload("graph500", size="tiny")
        parent_before = wl.memory.segment("PARENT").data.copy()
        frontier = wl.memory.segment("WL").data.copy()
        row = wl.memory.segment("ROW").data.copy()
        col = wl.memory.segment("COL").data.copy()
        FunctionalCore(wl.program, wl.memory).run_to_completion()
        parent_after = wl.memory.segment("PARENT").data
        frontier_set = set(int(u) for u in frontier)
        for v in range(len(parent_after)):
            if parent_before[v] == -1 and parent_after[v] != -1:
                assert int(parent_after[v]) in frontier_set

    def test_cc_labels_shrink(self):
        wl = build_workload("cc", size="tiny")
        before = wl.memory.segment("COMP").data.copy()
        FunctionalCore(wl.program, wl.memory).run_to_completion()
        after = wl.memory.segment("COMP").data
        assert np.all(after <= before)

    def test_sssp_relaxes_distances(self):
        wl = build_workload("sssp", size="tiny")
        before = wl.memory.segment("DIST").data.copy()
        FunctionalCore(wl.program, wl.memory).run_to_completion()
        after = wl.memory.segment("DIST").data
        assert np.all(after <= before)
        assert np.any(after < before)

    def test_pr_accumulates_contributions(self):
        wl = build_workload("pr", size="tiny")
        row = wl.memory.segment("ROW").data.copy()
        col = wl.memory.segment("COL").data.copy()
        contrib = wl.memory.segment("CONTRIB").data.copy()
        FunctionalCore(wl.program, wl.memory).run_to_completion()
        rank = wl.memory.segment("RANK").data
        for u in (0, len(rank) // 2):
            expected = float(contrib[col[row[u] : row[u + 1]]].sum())
            assert rank[u] == pytest.approx(expected)

    def test_bc_accumulates_sigma(self):
        wl = build_workload("bc", size="tiny")
        before = wl.memory.segment("SIGMA").data.copy()
        FunctionalCore(wl.program, wl.memory).run_to_completion()
        after = wl.memory.segment("SIGMA").data
        assert np.all(after >= before)


class TestWorkloadShapes:
    @pytest.mark.parametrize("name", ["camel", "hj8", "kangaroo"])
    def test_multi_level_chains_are_memory_bound(self, name):
        wl = build_workload(name)
        result = OoOCore(wl.program, wl.memory, quick_config(4000)).run()
        assert result.llc_mpki() > 30

    def test_nas_cg_has_short_inner_loops(self):
        wl = build_workload("nas_cg")
        assert wl.meta["row_len"] < 64  # below the nested threshold

    def test_gap_meta_reports_graph(self):
        wl = build_workload("bfs")
        assert wl.meta["nodes"] > 0 and wl.meta["edges"] > 0
        assert wl.meta["frontier"] > 0
