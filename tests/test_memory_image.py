"""Unit tests for the functional memory image."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MemoryError_, SegmentOverlapError
from repro.memory import MemoryImage


class TestAllocation:
    def test_allocate_by_size(self):
        mem = MemoryImage()
        seg = mem.allocate("a", 16)
        assert seg.size_bytes == 128
        assert mem.read_word(seg.base) == 0

    def test_allocate_from_data(self):
        mem = MemoryImage()
        seg = mem.allocate("a", [1, 2, 3])
        assert mem.read_word(seg.base + 8) == 2

    def test_segments_do_not_overlap(self):
        mem = MemoryImage()
        a = mem.allocate("a", 100)
        b = mem.allocate("b", 100)
        assert a.end <= b.base or b.end <= a.base

    def test_segments_line_spaced(self):
        mem = MemoryImage()
        a = mem.allocate("a", 3)  # 24 bytes, not line aligned
        b = mem.allocate("b", 3)
        assert b.base % 8 == 0
        assert b.base - a.end >= 8  # padding keeps lines disjoint

    def test_duplicate_name_rejected(self):
        mem = MemoryImage()
        mem.allocate("a", 8)
        with pytest.raises(SegmentOverlapError):
            mem.allocate("a", 8)

    def test_explicit_base_overlap_rejected(self):
        mem = MemoryImage()
        a = mem.allocate("a", 8)
        with pytest.raises(SegmentOverlapError):
            mem.allocate("b", 8, base=a.base + 8)

    def test_empty_segment_rejected(self):
        with pytest.raises(MemoryError_):
            MemoryImage().allocate("a", 0)

    def test_misaligned_base_rejected(self):
        with pytest.raises(MemoryError_):
            MemoryImage().allocate("a", 8, base=0x1001)

    def test_segment_lookup_by_name(self):
        mem = MemoryImage()
        seg = mem.allocate("data", 4)
        assert mem.segment("data") is seg
        with pytest.raises(MemoryError_):
            mem.segment("nope")

    def test_total_bytes(self):
        mem = MemoryImage()
        mem.allocate("a", 4)
        mem.allocate("b", 8)
        assert mem.total_bytes == 96


class TestAccess:
    def test_write_then_read(self):
        mem = MemoryImage()
        seg = mem.allocate("a", 4)
        mem.write_word(seg.base + 16, 99)
        assert mem.read_word(seg.base + 16) == 99

    def test_unmapped_read_raises(self):
        mem = MemoryImage()
        mem.allocate("a", 4)
        with pytest.raises(MemoryError_):
            mem.read_word(0x10)

    def test_unmapped_write_raises(self):
        mem = MemoryImage()
        mem.allocate("a", 4)
        with pytest.raises(MemoryError_):
            mem.write_word(0x10, 1)

    def test_read_past_segment_end_raises(self):
        mem = MemoryImage()
        seg = mem.allocate("a", 4)
        with pytest.raises(MemoryError_):
            mem.read_word(seg.base + 32)

    def test_float_segment_roundtrip(self):
        mem = MemoryImage()
        seg = mem.allocate("f", [1.5, 2.5], dtype=np.float64)
        assert mem.read_word(seg.base + 8) == pytest.approx(2.5)
        mem.write_word(seg.base, 0.25)
        assert mem.read_word(seg.base) == pytest.approx(0.25)

    def test_values_are_python_scalars(self):
        mem = MemoryImage()
        seg = mem.allocate("a", [7])
        assert type(mem.read_word(seg.base)) is int


class TestSpeculativeAccess:
    def test_mapped_read(self):
        mem = MemoryImage()
        seg = mem.allocate("a", [5, 6])
        value, ok = mem.read_word_speculative(seg.base + 8)
        assert ok and value == 6

    def test_unmapped_read_is_silent(self):
        mem = MemoryImage()
        mem.allocate("a", 4)
        value, ok = mem.read_word_speculative(0x33)
        assert not ok and value == 0

    def test_negative_address(self):
        mem = MemoryImage()
        mem.allocate("a", 4)
        value, ok = mem.read_word_speculative(-8)
        assert not ok

    def test_non_integer_address(self):
        mem = MemoryImage()
        mem.allocate("a", 4)
        value, ok = mem.read_word_speculative("bogus")
        assert not ok

    def test_misaligned_read_rounds_down(self):
        mem = MemoryImage()
        seg = mem.allocate("a", [5, 6])
        value, ok = mem.read_word_speculative(seg.base + 9)
        assert ok and value == 6

    def test_is_mapped(self):
        mem = MemoryImage()
        seg = mem.allocate("a", 4)
        assert mem.is_mapped(seg.base)
        assert not mem.is_mapped(seg.base + 4096)


@given(
    offsets=st.lists(st.integers(0, 63), min_size=1, max_size=20),
    values=st.lists(st.integers(-(2**62), 2**62), min_size=20, max_size=20),
)
@settings(max_examples=50)
def test_write_read_roundtrip_property(offsets, values):
    mem = MemoryImage()
    seg = mem.allocate("a", 64)
    expected = {}
    for offset, value in zip(offsets, values):
        addr = seg.base + offset * 8
        mem.write_word(addr, value)
        expected[addr] = value
    for addr, value in expected.items():
        assert mem.read_word(addr) == value
