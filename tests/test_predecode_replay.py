"""Differential tests for the pre-decoded kernel and trace replay.

The fast path (:meth:`FunctionalCore.step`, per-PC specialized
closures) must be bit-identical to the original interpreter
(:meth:`FunctionalCore.step_reference`, kept verbatim as the spec) —
hypothesis drives both over randomly generated programs mixing ALU
ops, loads, stores, prefetches, and a conditional loop, comparing the
full ``DynInstr`` stream and every piece of architectural state.

The replay half asserts the ``repro.perf`` claim: a cached
architectural trace replayed into a timing run produces *exactly* the
result of a from-scratch run — same counters, same cycles, same golden
trace digest — across every (technique, workload) combination of the
golden suite.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FunctionalCore
from repro.core.dyninstr import DynInstr, DynInstrPool
from repro.errors import SimulationError
from repro.experiments.cache import BATCH_COUNTERS
from repro.experiments.runner import run_simulation
from repro.isa import Opcode, ProgramBuilder
from repro.memory import MemoryImage
from repro.perf.trace import (
    ArchTrace,
    ReplaySource,
    capture_arch_trace,
    clear_trace_memo,
)

# -- random mixed programs ----------------------------------------------------

_ALU_OPS = [
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
    Opcode.AND,
    Opcode.OR,
    Opcode.XOR,
    Opcode.CMP_LT,
    Opcode.CMP_EQ,
]

_BUF_WORDS = 16

_body_item = st.one_of(
    st.tuples(
        st.just("alu"),
        st.sampled_from(_ALU_OPS),
        st.integers(1, 7),  # rd
        st.integers(1, 7),  # rs1
        st.integers(1, 7),  # rs2
    ),
    st.tuples(st.just("load"), st.integers(1, 7), st.integers(0, _BUF_WORDS - 1)),
    st.tuples(st.just("store"), st.integers(1, 7), st.integers(0, _BUF_WORDS - 1)),
    st.tuples(st.just("prefetch"), st.integers(0, _BUF_WORDS - 1)),
    st.tuples(st.just("nop")),
)


def _build(seeds, body, iterations):
    """One program/memory pair: seeded regs, a counted loop of ``body``."""
    mem = MemoryImage()
    seg = mem.allocate("buf", _BUF_WORDS)
    b = ProgramBuilder()
    for reg, value in enumerate(seeds, start=1):
        b.li(f"r{reg}", value)
    b.li("r8", seg.base)
    b.li("r9", iterations)
    b.label("loop")
    for item in body:
        kind = item[0]
        if kind == "alu":
            _, op, rd, rs1, rs2 = item
            b._emit(op, rd=rd, rs1=rs1, rs2=rs2)
        elif kind == "load":
            _, rd, word = item
            b.load(f"r{rd}", "r8", imm=8 * word)
        elif kind == "store":
            _, rs2, word = item
            b.store(f"r{rs2}", "r8", imm=8 * word)
        elif kind == "prefetch":
            b.prefetch("r8", imm=8 * item[1])
        else:
            b.nop()
    b.addi("r9", "r9", -1)
    b.bnz("r9", "loop")
    b.bez("r9", "done")
    b.nop()  # skipped: the BEZ above is always taken at loop exit
    b.label("done")
    return b.build(), mem


@given(
    seeds=st.lists(st.integers(-1000, 1000), min_size=7, max_size=7),
    body=st.lists(_body_item, min_size=1, max_size=20),
    iterations=st.integers(1, 4),
)
@settings(max_examples=50, deadline=None)
def test_fast_path_matches_reference_interpreter(seeds, body, iterations):
    """step() and step_reference() emit identical DynInstr streams."""
    program, mem = _build(seeds, body, iterations)
    fast = FunctionalCore(program, mem)
    program_ref, mem_ref = _build(seeds, body, iterations)
    ref = FunctionalCore(program_ref, mem_ref)

    for _ in range(100_000):
        a = fast.step()
        b = ref.step_reference()
        if a is None or b is None:
            assert (a is None) and (b is None)
            break
        assert (a.seq, a.pc, a.value, a.addr, a.taken, a.next_pc) == (
            b.seq,
            b.pc,
            b.value,
            b.addr,
            b.taken,
            b.next_pc,
        )
        # Instruction identity must come from the live program object.
        assert a.instr is program[a.pc]

    assert fast.halted and ref.halted
    assert fast.regs == ref.regs
    assert (fast.pc, fast.executed) == (ref.pc, ref.executed)
    for seg_ref in mem_ref.segments():
        assert np.array_equal(mem.segment(seg_ref.name).data, seg_ref.data)


@given(
    seeds=st.lists(st.integers(-1000, 1000), min_size=7, max_size=7),
    body=st.lists(_body_item, min_size=1, max_size=20),
    iterations=st.integers(1, 4),
)
@settings(max_examples=25, deadline=None)
def test_capture_replay_matches_live_stream(seeds, body, iterations):
    """A captured trace replays the exact live DynInstr stream."""
    program, mem = _build(seeds, body, iterations)
    trace = capture_arch_trace(program, mem, limit=100_000)
    assert trace.halted

    program2, mem2 = _build(seeds, body, iterations)
    live = FunctionalCore(program2, mem2)
    replay = ReplaySource(trace, program2, mem2)
    while True:
        a = replay.step()
        b = live.step()
        if a is None or b is None:
            assert (a is None) and (b is None)
            break
        assert (a.seq, a.pc, a.value, a.addr, a.taken, a.next_pc) == (
            b.seq,
            b.pc,
            b.value,
            b.addr,
            b.taken,
            b.next_pc,
        )
        assert a.instr is b.instr
    # Stores were re-applied: the replayed image equals the live one.
    for seg in mem2.segments():
        assert np.array_equal(mem.segment(seg.name).data, seg.data)


# -- replay vs from-scratch over the golden suite -----------------------------

_INSTRUCTIONS = 1_500
_COMBOS = [
    (t, w)
    for t in ("ooo", "vr", "dvr", "pre")
    for w in ("camel", "nas_is")
]


@pytest.mark.parametrize("technique,workload", _COMBOS)
def test_replay_matches_from_scratch_on_goldens(technique, workload):
    """Cached-trace replay is bit-identical to a from-scratch run."""
    clear_trace_memo()
    fresh = run_simulation(
        workload, technique, max_instructions=_INSTRUCTIONS, trace=True, replay="off"
    )
    # First auto run captures the stream, second replays it.
    captured = run_simulation(
        workload, technique, max_instructions=_INSTRUCTIONS, trace=True
    )
    before = BATCH_COUNTERS.snapshot().get("batch.trace.replays", 0)
    replayed = run_simulation(
        workload, technique, max_instructions=_INSTRUCTIONS, trace=True
    )
    assert BATCH_COUNTERS.snapshot().get("batch.trace.replays", 0) == before + 1
    assert captured.to_dict() == fresh.to_dict()
    assert replayed.to_dict() == fresh.to_dict()
    assert replayed.trace_digest == fresh.trace_digest


def test_streams_are_technique_independent():
    """One captured stream serves every technique of a workload."""
    clear_trace_memo()
    run_simulation("camel", "ooo", max_instructions=_INSTRUCTIONS)  # capture
    before = BATCH_COUNTERS.snapshot().get("batch.trace.replays", 0)
    for technique in ("vr", "dvr", "pre"):
        live = run_simulation(
            "camel", technique, max_instructions=_INSTRUCTIONS, trace=True,
            replay="off",
        )
        shared = run_simulation(
            "camel", technique, max_instructions=_INSTRUCTIONS, trace=True
        )
        assert shared.to_dict() == live.to_dict()
    # Exactly one replay per shared run; the live runs never replay.
    assert BATCH_COUNTERS.snapshot().get("batch.trace.replays", 0) == before + 3


# -- unit coverage ------------------------------------------------------------

def test_arch_trace_payload_round_trip():
    trace = ArchTrace(
        pcs=[0, 1, 2],
        values=[None, 5, None],
        addrs=[None, 64, 72],
        takens=[None, None, None],
        next_pcs=[1, 2, 3],
        halted=True,
    )
    clone = ArchTrace.from_payload(trace.to_payload())
    assert len(clone) == 3
    for field in ("pcs", "values", "addrs", "takens", "next_pcs", "halted"):
        assert getattr(clone, field) == getattr(trace, field)


def test_arch_trace_rejects_foreign_schema():
    payload = ArchTrace([], [], [], [], [], True).to_payload()
    payload["schema"] = "something/else"
    with pytest.raises(ValueError):
        ArchTrace.from_payload(payload)


def test_replay_source_raises_past_truncated_trace():
    """A budget-truncated trace must never silently run dry."""
    program, mem = _build([1] * 7, [("nop",)], iterations=4)
    trace = capture_arch_trace(program, mem, limit=3)
    assert not trace.halted
    program2, mem2 = _build([1] * 7, [("nop",)], iterations=4)
    source = ReplaySource(trace, program2, mem2)
    for _ in range(3):
        assert source.step() is not None
    with pytest.raises(SimulationError):
        source.step()


def test_replay_source_returns_none_after_halt():
    program, mem = _build([1] * 7, [("nop",)], iterations=1)
    trace = capture_arch_trace(program, mem, limit=100_000)
    assert trace.halted
    program2, mem2 = _build([1] * 7, [("nop",)], iterations=1)
    source = ReplaySource(trace, program2, mem2)
    while source.step() is not None:
        pass
    assert source.step() is None  # stays exhausted, no raise


def test_dyninstr_pool_reuses_released_records():
    pool = DynInstrPool(prealloc=2)
    assert len(pool) == 2
    first = pool.take(0, 0, None, value=7, next_pc=1)
    assert (first.seq, first.value, first.next_pc) == (0, 7, 1)
    assert len(pool) == 1
    pool.release(first)
    again = pool.take(1, 3, None, addr=64, next_pc=4)
    assert again is first  # same object, fully re-initialised
    assert (again.seq, again.pc, again.value, again.addr) == (1, 3, None, 64)
    # An empty pool allocates rather than failing.
    empty = DynInstrPool()
    assert len(empty) == 0
    assert isinstance(empty.take(0, 0, None), DynInstr)
