"""Parallel batches must be bit-identical to serial execution.

The simulator is deterministic and every ``run_batch`` spec is hermetic
(fresh workload, fresh core), so a process pool may not change any
result — including the full observability counter snapshot and the
event-trace digest, which fold in every microarchitectural event.
Also covers the ``jobs`` argument validation.
"""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.experiments.parallel import run_batch

_SPECS = [
    {"workload": "camel", "technique": "vr", "max_instructions": 1200},
    {"workload": "camel", "technique": "dvr", "max_instructions": 1200},
    {"workload": "nas_is", "technique": "ooo", "max_instructions": 1200},
    {"workload": "nas_is", "technique": "pre", "max_instructions": 1200},
]


def _traced(specs):
    return [dict(spec, trace=True) for spec in specs]


def test_parallel_bit_identical_to_serial():
    serial = run_batch(_traced(_SPECS), jobs=1)
    parallel = run_batch(_traced(_SPECS), jobs=4)
    assert len(serial) == len(parallel) == len(_SPECS)
    for s, p in zip(serial, parallel):
        assert s.to_dict() == p.to_dict()


def test_parallel_counter_snapshots_identical():
    serial = run_batch(_SPECS, jobs=1)
    parallel = run_batch(_SPECS, jobs=4)
    for s, p in zip(serial, parallel):
        assert s.counters == p.counters
        assert len(s.counters) > 0


def test_parallel_trace_digests_identical():
    serial = run_batch(_traced(_SPECS), jobs=1)
    parallel = run_batch(_traced(_SPECS), jobs=4)
    for s, p in zip(serial, parallel):
        assert s.trace_digest is not None
        assert s.trace_digest == p.trace_digest
        assert s.trace_events == p.trace_events


@pytest.mark.parametrize("jobs", [-1, -7, 0])
def test_run_batch_rejects_nonpositive_jobs(jobs):
    with pytest.raises(ReproError):
        run_batch(_SPECS[:1], jobs=jobs)


@pytest.mark.parametrize("jobs", [2.0, "4", True])
def test_run_batch_rejects_non_integer_jobs(jobs):
    with pytest.raises(ReproError):
        run_batch(_SPECS[:1], jobs=jobs)


def test_run_batch_accepts_none_and_positive_ints():
    none_result = run_batch(_SPECS[:1], jobs=None)
    one_result = run_batch(_SPECS[:1], jobs=1)
    assert none_result[0].to_dict() == one_result[0].to_dict()
