"""Shared fixtures and kernel builders for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SimConfig
from repro.isa import ProgramBuilder
from repro.memory import MemoryImage


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/golden/ reference digests from the current run",
    )


@pytest.fixture
def update_goldens(request):
    return request.config.getoption("--update-goldens")


def quick_config(max_instructions: int = 6_000, **overrides) -> SimConfig:
    """A config sized for tests: same structure, short regions."""
    from dataclasses import replace

    return replace(SimConfig(max_instructions=max_instructions), **overrides)


def build_indirect_kernel(n: int = 4096, levels: int = 1, seed: int = 3):
    """``sink = A_levels[... A_1[A_0[i]] ...]`` — the canonical chain.

    Returns (program, memory). Level 0 is the striding load; each
    further level is an indirect load through random indices.
    """
    rng = np.random.default_rng(seed)
    mem = MemoryImage()
    arrays = []
    for level in range(levels + 1):
        data = rng.integers(0, n, n)
        arrays.append(mem.allocate(f"A{level}", data))
    b = ProgramBuilder(f"indirect{levels}")
    for level, seg in enumerate(arrays):
        b.li(f"r{20 + level}", seg.base)
    b.li("r1", 0)      # i
    b.li("r2", n)      # bound
    b.label("loop")
    b.shli("r3", "r1", 3)
    b.add("r3", "r20", "r3")
    b.load("r4", "r3")  # A0[i] — striding
    for level in range(1, levels + 1):
        b.shli("r5", "r4", 3)
        b.add("r5", f"r{20 + level}", "r5")
        b.load("r4", "r5")  # A_level[...]
    b.addi("r1", "r1", 1)
    b.cmp_lt("r6", "r1", "r2")
    b.bnz("r6", "loop")
    b.halt()
    return b.build(), mem


def build_counted_loop(iterations: int):
    """A pure-ALU counted loop (no memory): for i in range(iterations)."""
    b = ProgramBuilder("counted")
    b.li("r1", 0)
    b.li("r2", iterations)
    b.label("loop")
    b.addi("r3", "r1", 7)
    b.addi("r1", "r1", 1)
    b.cmp_lt("r4", "r1", "r2")
    b.bnz("r4", "loop")
    b.halt()
    mem = MemoryImage()
    mem.allocate("PAD", 8)
    return b.build(), mem


def build_nested_loop_kernel(outer: int = 64, inner: int = 8, seed: int = 5):
    """Outer striding load feeding short inner loops (Nested-mode bait).

    ``for o: base=START[o]; n=LEN[o]; for j<n: sink=DATA[IDX[base+j]]``
    """
    rng = np.random.default_rng(seed)
    total = outer * inner
    mem = MemoryImage()
    # Outer iterations visit the inner ranges in a shuffled order (as a
    # BFS worklist would), so runs past a range boundary prefetch data
    # belonging to a *different*, arbitrarily distant outer iteration.
    start = mem.allocate(
        "START", rng.permutation(outer).astype(np.int64) * inner
    )
    length = mem.allocate("LEN", np.full(outer, inner, dtype=np.int64))
    idx = mem.allocate("IDX", rng.integers(0, total, total))
    data = mem.allocate("DATA", rng.integers(0, 1 << 20, total))
    b = ProgramBuilder("nested")
    b.li("r1", start.base)
    b.li("r2", length.base)
    b.li("r3", idx.base)
    b.li("r4", data.base)
    b.li("r5", outer)
    b.li("r6", 0)  # o
    b.label("outer")
    b.shli("r7", "r6", 3)
    b.add("r8", "r1", "r7")
    b.load("r9", "r8")   # base = START[o]  (outer stride)
    b.add("r10", "r2", "r7")
    b.load("r11", "r10")  # n = LEN[o]
    b.add("r11", "r11", "r9")  # end = base + n
    b.mov("r12", "r9")  # j = base
    b.cmp_lt("r13", "r12", "r11")
    b.bez("r13", "inner_done")
    b.label("inner")
    b.shli("r14", "r12", 3)
    b.add("r14", "r3", "r14")
    b.load("r15", "r14")  # v = IDX[j]  (inner stride)
    b.shli("r16", "r15", 3)
    b.add("r16", "r4", "r16")
    b.load("r17", "r16")  # DATA[v]   (indirect, FLR)
    b.addi("r12", "r12", 1)
    b.cmp_lt("r13", "r12", "r11")
    b.bnz("r13", "inner")
    b.label("inner_done")
    b.addi("r6", "r6", 1)
    b.cmp_lt("r18", "r6", "r5")
    b.bnz("r18", "outer")
    b.halt()
    return b.build(), mem


@pytest.fixture
def indirect_kernel():
    return build_indirect_kernel()


@pytest.fixture
def nested_kernel():
    return build_nested_loop_kernel()
