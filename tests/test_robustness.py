"""Adversarial robustness: every technique must survive arbitrary
programs (garbage addresses, weird control flow, degenerate loops)
without crashing, hanging, or corrupting architectural state.

Runahead is transient execution over speculative values — the engines
routinely compute wild addresses and follow wrong paths, and the paper's
hardware never faults on them. Neither may we.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FunctionalCore, OoOCore
from repro.isa import Opcode, ProgramBuilder
from repro.isa.instructions import Instruction
from repro.isa.program import Program
from repro.memory import MemoryImage
from repro.techniques import make_technique

from conftest import quick_config

_TECHNIQUES = ["pre", "runahead", "imp", "vr", "dvr", "continuous"]


def _random_program(rng, n_instructions, n_segments, seg_words):
    """A random but *terminating* program: a bounded counted loop whose
    body is random ALU/memory/branch soup."""
    mem = MemoryImage()
    bases = []
    for k in range(n_segments):
        seg = mem.allocate(f"S{k}", rng.integers(0, 1 << 20, seg_words))
        bases.append(seg.base)
    b = ProgramBuilder()
    for reg, base in enumerate(bases, start=20):
        b.li(f"r{reg}", int(base))
    b.li("r1", 0)
    b.li("r2", 300)  # trip count
    b.label("loop")
    label_count = 0
    for k in range(n_instructions):
        choice = rng.integers(0, 8)
        rd = f"r{int(rng.integers(3, 12))}"
        rs = f"r{int(rng.integers(3, 12))}"
        rt = f"r{int(rng.integers(3, 12))}"
        if choice == 0:
            # Masked load from a random segment: always in bounds.
            base_reg = f"r{int(rng.integers(20, 20 + n_segments))}"
            b.andi(rd, rs, seg_words - 1)
            b.shli(rd, rd, 3)
            b.add(rd, base_reg, rd)
            b.load(rd, rd)
        elif choice == 1:
            b.hash(rd, rs)
        elif choice == 2:
            b.add(rd, rs, rt)
        elif choice == 3:
            b.xor(rd, rs, rt)
        elif choice == 4:
            # Forward branch over one instruction.
            label = f"fwd{label_count}"
            label_count += 1
            b.bnz(rs, label)
            b.addi(rd, rd, 1)
            b.label(label)
        elif choice == 5:
            base_reg = f"r{int(rng.integers(20, 20 + n_segments))}"
            b.andi(rd, rs, seg_words - 1)
            b.shli(rd, rd, 3)
            b.add(rd, base_reg, rd)
            b.store(rt, rd)
        elif choice == 6:
            b.cmp_lt(rd, rs, rt)
        else:
            b.shri(rd, rs, int(rng.integers(0, 4)))
    b.addi("r1", "r1", 1)
    b.cmp_lt("r13", "r1", "r2")
    b.bnz("r13", "loop")
    return b.build(), mem


@given(seed=st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_random_programs_run_under_every_technique(seed):
    rng = np.random.default_rng(seed)
    n_instructions = int(rng.integers(4, 16))
    technique = _TECHNIQUES[seed % len(_TECHNIQUES)]
    program, mem = _random_program(rng, n_instructions, n_segments=2, seg_words=256)
    result = OoOCore(
        program, mem, quick_config(2500), technique=make_technique(technique)
    ).run()
    assert result.cycles > 0
    assert 0 < result.ipc <= 5


@given(seed=st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_random_programs_preserve_architecture(seed):
    """Timing + technique never changes what the program computes."""
    rng = np.random.default_rng(seed)
    n_instructions = int(rng.integers(4, 12))
    technique = _TECHNIQUES[seed % len(_TECHNIQUES)]

    rng_a = np.random.default_rng(seed + 1)
    program_a, mem_a = _random_program(rng_a, n_instructions, 2, 128)
    rng_b = np.random.default_rng(seed + 1)
    program_b, mem_b = _random_program(rng_b, n_instructions, 2, 128)

    ref = FunctionalCore(program_a, mem_a)
    for _ in range(2000):
        if ref.step() is None:
            break
    OoOCore(
        program_b, mem_b, quick_config(2000), technique=make_technique(technique)
    ).run()
    for seg in mem_a.segments():
        assert np.array_equal(mem_b.segment(seg.name).data, seg.data)


class TestDegenerateShapes:
    """Hand-picked pathological programs."""

    def _run(self, program, mem, technique):
        return OoOCore(
            program, mem, quick_config(2000), technique=make_technique(technique)
        ).run()

    @pytest.mark.parametrize("technique", _TECHNIQUES)
    def test_stride_load_with_wild_pointer_chain(self, technique):
        """The dependent 'pointer' values point far outside every
        segment — engines must mask lanes, never fault."""
        mem = MemoryImage()
        a = mem.allocate("A", [(1 << 55) + 17 * k for k in range(512)])
        b = ProgramBuilder()
        b.li("r1", a.base)
        b.li("r2", 0)
        b.li("r3", 512)
        b.label("loop")
        b.shli("r4", "r2", 3)
        b.add("r4", "r1", "r4")
        b.load("r5", "r4")     # striding load of wild values
        b.load("r6", "r5")     # dependent load at a garbage address...
        b.addi("r2", "r2", 1)
        b.cmp_lt("r7", "r2", "r3")
        b.bnz("r7", "loop")
        program = b.build()
        # ...which even the *architectural* execution cannot survive, so
        # the functional core must fault — but only the main thread:
        from repro.errors import MemoryError_

        with pytest.raises(MemoryError_):
            self._run(program, mem, technique)

    @pytest.mark.parametrize("technique", _TECHNIQUES)
    def test_speculatively_wild_but_architecturally_safe(self, technique):
        """Same shape, but the wild dereference is branch-guarded so the
        real execution never takes it. Runahead engines *will* go down
        that path speculatively; they must not crash."""
        mem = MemoryImage()
        rng = np.random.default_rng(8)
        a = mem.allocate("A", (rng.integers(1, 1 << 50, 1024) | 1))
        safe = mem.allocate("SAFE", rng.integers(0, 1024, 1024))
        b = ProgramBuilder()
        b.li("r1", a.base)
        b.li("r8", safe.base)
        b.li("r2", 0)
        b.li("r3", 1024)
        b.li("r9", 0)  # guard: never true architecturally
        b.label("loop")
        b.shli("r4", "r2", 3)
        b.add("r4", "r1", "r4")
        b.load("r5", "r4")          # striding load of wild values
        b.bez("r9", "safe_path")
        b.load("r6", "r5")          # wild deref: architecturally dead
        b.label("safe_path")
        b.andi("r6", "r5", 1023)
        b.shli("r6", "r6", 3)
        b.add("r6", "r8", "r6")
        b.load("r7", "r6")          # safe dependent load
        b.addi("r2", "r2", 1)
        b.cmp_lt("r10", "r2", "r3")
        b.bnz("r10", "loop")
        result = self._run(b.build(), mem, technique)
        assert result.instructions > 0

    @pytest.mark.parametrize("technique", _TECHNIQUES)
    def test_single_iteration_loop(self, technique):
        mem = MemoryImage()
        a = mem.allocate("A", [3])
        b = ProgramBuilder()
        b.li("r1", a.base)
        b.li("r2", 0)
        b.label("loop")
        b.load("r3", "r1")
        b.addi("r2", "r2", 1)
        b.cmp_lti("r4", "r2", 1)
        b.bnz("r4", "loop")
        result = self._run(b.build(), mem, technique)
        assert result.instructions > 0

    @pytest.mark.parametrize("technique", _TECHNIQUES)
    def test_zero_trip_inner_loops(self, technique):
        """Inner loops that never execute (empty rows)."""
        mem = MemoryImage()
        row = mem.allocate("ROW", [0] * 257)  # every row empty
        col = mem.allocate("COL", [0])
        b = ProgramBuilder()
        b.li("r1", row.base)
        b.li("r2", col.base)
        b.li("r3", 0)
        b.li("r4", 256)
        b.label("outer")
        b.shli("r5", "r3", 3)
        b.add("r5", "r1", "r5")
        b.load("r6", "r5")
        b.load("r7", "r5", 8)
        b.mov("r8", "r6")
        b.cmp_lt("r9", "r8", "r7")
        b.bez("r9", "done")
        b.label("inner")
        b.shli("r10", "r8", 3)
        b.add("r10", "r2", "r10")
        b.load("r11", "r10")
        b.addi("r8", "r8", 1)
        b.cmp_lt("r9", "r8", "r7")
        b.bnz("r9", "inner")
        b.label("done")
        b.addi("r3", "r3", 1)
        b.cmp_lt("r12", "r3", "r4")
        b.bnz("r12", "outer")
        result = self._run(b.build(), mem, technique)
        assert result.instructions > 0

    @pytest.mark.parametrize("technique", ["vr", "dvr"])
    def test_self_modifying_induction(self, technique):
        """An induction variable that is itself loaded from memory."""
        mem = MemoryImage()
        a = mem.allocate("A", list(range(1, 2049)))
        idx = mem.allocate("IDX", [0])
        b = ProgramBuilder()
        b.li("r1", a.base)
        b.li("r2", idx.base)
        b.li("r3", 2048)
        b.label("loop")
        b.load("r4", "r2")      # i = IDX[0]
        b.shli("r5", "r4", 3)
        b.add("r5", "r1", "r5")
        b.load("r6", "r5")      # A[i]
        b.addi("r4", "r4", 1)
        b.store("r4", "r2")     # IDX[0] = i + 1
        b.cmp_lt("r7", "r4", "r3")
        b.bnz("r7", "loop")
        result = self._run(b.build(), mem, technique)
        assert result.instructions > 0

    @pytest.mark.parametrize("technique", _TECHNIQUES)
    def test_program_of_only_branches(self, technique):
        b = ProgramBuilder()
        b.li("r1", 64)
        b.label("loop")
        b.addi("r1", "r1", -1)
        b.bnz("r1", "loop")
        mem = MemoryImage()
        mem.allocate("PAD", 8)
        result = self._run(b.build(), mem, technique)
        assert result.instructions > 0
