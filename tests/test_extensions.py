"""Tests for the extension features: CPI stacks, warmup/ROI support,
Continuous Runahead, and result export formats."""

import csv
import io
import json
from dataclasses import replace

import pytest

from repro.cli import main
from repro.config import SimConfig
from repro.core import FunctionalCore, OoOCore
from repro.experiments import ExperimentResult, run_simulation
from repro.techniques import make_technique, technique_names

from conftest import build_counted_loop, build_indirect_kernel, quick_config


class TestCpiStack:
    def test_stack_sums_to_cpi(self):
        for workload, technique in (("camel", "ooo"), ("bfs", "dvr"), ("nas_is", "vr")):
            result = run_simulation(workload, technique, max_instructions=4000)
            stack = result.cpi_stack()
            assert sum(stack.values()) == pytest.approx(
                result.cycles / result.instructions, rel=1e-9
            )

    def test_alu_loop_is_dependency_or_base_bound(self):
        program, mem = build_counted_loop(1000)
        result = OoOCore(program, mem, quick_config()).run()
        stack = result.cpi_stack()
        mem_cycles = sum(v for k, v in stack.items() if k.startswith("mem_"))
        assert mem_cycles < 0.05

    def test_memory_kernel_is_dram_bound(self):
        program, mem = build_indirect_kernel(levels=2)
        result = OoOCore(program, mem, quick_config()).run()
        stack = result.cpi_stack()
        assert stack.get("mem_dram", 0) > 0.5 * sum(stack.values())

    def test_vr_shows_runahead_block(self):
        result = run_simulation("nas_is", "vr", max_instructions=4000)
        assert result.cpi_stack().get("runahead_block", 0) > 0

    def test_dvr_never_shows_runahead_block(self):
        result = run_simulation("nas_is", "dvr", max_instructions=4000)
        assert result.cpi_stack().get("runahead_block", 0) == 0

    def test_branch_bucket_on_mispredicting_kernel(self):
        import numpy as np

        from repro.isa import ProgramBuilder
        from repro.memory import MemoryImage

        rng = np.random.default_rng(3)
        mem = MemoryImage()
        seg = mem.allocate("a", rng.integers(0, 2, 4096))
        b = ProgramBuilder()
        b.li("r1", seg.base)
        b.li("r2", 0)
        b.li("r3", 4096)
        b.label("loop")
        b.shli("r4", "r2", 3)
        b.add("r4", "r1", "r4")
        b.load("r5", "r4")
        b.bnz("r5", "skip")
        b.addi("r6", "r6", 1)
        b.label("skip")
        b.addi("r2", "r2", 1)
        b.cmp_lt("r7", "r2", "r3")
        b.bnz("r7", "loop")
        result = OoOCore(b.build(), mem, quick_config()).run()
        assert result.cpi_stack().get("branch", 0) > 0

    def test_empty_result_has_empty_stack(self):
        from repro.core.ooo import SimulationResult

        empty = SimulationResult(
            workload="x", technique="x", instructions=0, cycles=1,
            full_rob_stall_cycles=0, stall_episodes=0, commit_block_cycles=0,
            branch_predictions=0, branch_mispredictions=0, demand_loads=0,
            demand_level_counts={}, dram_by_source={}, prefetches_by_source={},
            timeliness={}, mean_mshr_occupancy=0.0,
        )
        assert empty.cpi_stack() == {}


class TestWarmup:
    def test_roi_excludes_warmup_instructions(self):
        cfg = replace(SimConfig(max_instructions=6000), warmup_instructions=2000)
        result = run_simulation("camel", "ooo", cfg)
        assert result.instructions == 4000

    def test_roi_stack_still_sums(self):
        cfg = replace(SimConfig(max_instructions=6000), warmup_instructions=2000)
        result = run_simulation("camel", "ooo", cfg)
        assert sum(result.cpi_stack().values()) == pytest.approx(
            result.cycles / result.instructions
        )

    def test_roi_counters_are_deltas(self):
        cold = run_simulation("nas_is", "ooo", SimConfig(max_instructions=6000))
        warm = run_simulation(
            "nas_is",
            "ooo",
            replace(SimConfig(max_instructions=6000), warmup_instructions=3000),
        )
        assert warm.demand_loads < cold.demand_loads
        assert warm.dram_accesses < cold.dram_accesses

    def test_warmup_longer_than_run_is_ignored(self):
        cfg = replace(SimConfig(max_instructions=1000), warmup_instructions=5000)
        result = run_simulation("camel", "ooo", cfg)
        assert result.instructions == 1000

    def test_warmup_ipc_is_steadier(self):
        """The warm region excludes cold-start predictor/cache training."""
        cfg = replace(SimConfig(max_instructions=8000), warmup_instructions=2000)
        warm = run_simulation("cc", "ooo", cfg)
        assert warm.ipc > 0


class TestContinuousRunahead:
    def test_registered(self):
        assert "continuous" in technique_names()

    def test_prefetches_into_llc(self):
        result = run_simulation("bfs", "continuous", max_instructions=6000)
        assert result.technique_stats["cr_prefetches"] > 0
        assert result.dram_by_source.get("runahead", 0) > 0

    def test_decoupled_no_commit_block(self):
        result = run_simulation("camel", "continuous", max_instructions=4000)
        assert result.commit_block_cycles == 0

    def test_chain_selection_tracks_delinquent_load(self):
        program, mem = build_indirect_kernel(levels=1)
        technique = make_technique("continuous")
        OoOCore(program, mem, quick_config(), technique=technique).run()
        assert technique._target_pc is not None
        assert technique.chain_switches >= 1
        assert len(technique._chain_pcs) > 0

    def test_never_corrupts_architectural_state(self):
        import numpy as np

        program, mem = build_indirect_kernel(n=1024, levels=2, seed=5)
        program_ref, mem_ref = build_indirect_kernel(n=1024, levels=2, seed=5)
        ref = FunctionalCore(program_ref, mem_ref)
        for _ in range(3000):
            if ref.step() is None:
                break
        OoOCore(
            program,
            mem,
            quick_config(3000),
            technique=make_technique("continuous"),
        ).run()
        for seg_ref in mem_ref.segments():
            assert np.array_equal(mem.segment(seg_ref.name).data, seg_ref.data)

    def test_weaker_than_dvr_on_dependent_chains(self):
        """The paper's point: scalar LLC-side engines cannot match DVR."""
        cr = run_simulation("hj8", "continuous", max_instructions=6000)
        dvr = run_simulation("hj8", "dvr", max_instructions=6000)
        assert dvr.ipc > cr.ipc


class TestLLCOnlyAccessPath:
    def test_fill_to_l3_skips_l1(self):
        from repro.config import MemoryConfig
        from repro.memory import MemoryHierarchy

        h = MemoryHierarchy(MemoryConfig.scaled())
        result = h.access(0x10000, 0, source="runahead", prefetch=True, fill_to="l3")
        assert result.level == "DRAM"
        line = h.line_of(0x10000)
        assert h.l3.contains(line, result.ready)
        assert not h.l1.contains(line, result.ready)
        assert h.mshrs.occupancy(1) == 0

    def test_l3_hit_path(self):
        from repro.config import MemoryConfig
        from repro.memory import MemoryHierarchy

        h = MemoryHierarchy(MemoryConfig.scaled())
        first = h.access(0x10000, 0, source="runahead", prefetch=True, fill_to="l3")
        second = h.access(0x10000, first.ready + 1, source="runahead", prefetch=True, fill_to="l3")
        assert second.level == "L3"


class TestExportFormats:
    def _result(self):
        return ExperimentResult(
            "x", "title", ["a", "b"], [["r1", 1.5], ["r2", 2]], notes=["n1"]
        )

    def test_csv_roundtrip(self):
        text = self._result().to_csv()
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["r1", "1.5"]

    def test_json_roundtrip(self):
        doc = json.loads(self._result().to_json())
        assert doc["experiment_id"] == "x"
        assert doc["rows"][1] == ["r2", 2]
        assert doc["notes"] == ["n1"]

    def test_cli_table_csv(self, capsys):
        assert main(["table", "table1", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("parameter,value")

    def test_cli_figure_json(self, capsys):
        code = main(
            ["figure", "figure9", "--instructions", "1000", "--workloads", "nas_is",
             "--format", "json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["experiment_id"] == "figure9"

    def test_cli_run_cpi(self, capsys):
        assert main(
            ["run", "--workload", "camel", "--technique", "ooo", "-n", "1500", "--cpi"]
        ) == 0
        assert "CPI stack" in capsys.readouterr().out
