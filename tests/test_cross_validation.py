"""Cross-validation of the mechanistic OoO model against the literal
per-cycle model (`repro.core.cycle.CycleCore`).

The two models share the functional front-end, branch predictor, and
timed memory hierarchy but compute timing completely differently
(analytical dataflow vs an explicit cycle loop). Agreement here is the
evidence that the fast model's approximations (order-statistic queues,
slot-based ports) are sound.
"""

import numpy as np
import pytest

from repro.config import CoreConfig, SimConfig
from repro.core import OoOCore
from repro.core.cycle import CycleCore
from repro.workloads import build_workload

from conftest import build_counted_loop, build_indirect_kernel, quick_config

# The acceptable IPC band between the two models.
TOLERANCE = 0.30


def both(builder, config=None, instructions=2000, **kw):
    p1, m1 = builder(**kw)
    fast = OoOCore(p1, m1, config or quick_config(instructions)).run()
    p2, m2 = builder(**kw)
    slow = CycleCore(p2, m2, config or quick_config(instructions)).run()
    return fast, slow, (m1, m2)


class TestTimingAgreement:
    def test_alu_loop(self):
        fast, slow, _ = both(build_counted_loop, iterations=300)
        assert fast.ipc == pytest.approx(slow.ipc, rel=TOLERANCE)

    @pytest.mark.parametrize("levels", [1, 2, 3])
    def test_indirect_chains(self, levels):
        fast, slow, _ = both(build_indirect_kernel, levels=levels)
        assert fast.ipc == pytest.approx(slow.ipc, rel=TOLERANCE)

    @pytest.mark.parametrize("name", ["camel", "nas_is", "bfs", "cc"])
    def test_paper_workloads(self, name):
        wl_fast = build_workload(name, size="tiny")
        fast = OoOCore(wl_fast.program, wl_fast.memory, quick_config(2000)).run()
        wl_slow = build_workload(name, size="tiny")
        slow = CycleCore(wl_slow.program, wl_slow.memory, quick_config(2000)).run()
        assert fast.ipc == pytest.approx(slow.ipc, rel=TOLERANCE)

    def test_rob_scaling_trend_agrees(self):
        """Both models must agree on the *direction* of a config change."""
        ratios = {}
        for rob in (64, 350):
            cfg = quick_config(1500).with_core(CoreConfig().with_scaled_backend(rob))
            fast, slow, _ = both(build_indirect_kernel, config=cfg, levels=1)
            ratios[rob] = (fast.ipc, slow.ipc)
        assert (ratios[350][0] >= ratios[64][0]) == (ratios[350][1] >= ratios[64][1])

    def test_dram_latency_sensitivity_agrees(self):
        from dataclasses import replace

        from repro.config import MemoryConfig

        slow_mem = replace(MemoryConfig.scaled(), dram_latency=400)
        cfg = replace(quick_config(1500), memory=slow_mem)
        fast_slowmem, cyc_slowmem, _ = both(build_indirect_kernel, config=cfg, levels=1)
        fast_base, cyc_base, _ = both(build_indirect_kernel, levels=1, instructions=1500)
        assert fast_slowmem.ipc < fast_base.ipc
        assert cyc_slowmem.ipc < cyc_base.ipc


class TestArchitecturalAgreement:
    def test_identical_memory_results(self):
        fast, slow, (m1, m2) = both(build_indirect_kernel, levels=2)
        assert fast.instructions == slow.instructions
        for seg in m1.segments():
            assert np.array_equal(m2.segment(seg.name).data, seg.data)

    def test_identical_demand_loads(self):
        fast, slow, _ = both(build_indirect_kernel, levels=1)
        assert fast.demand_loads == slow.demand_loads

    def test_branch_mispredict_counts_match(self):
        """Same predictor, same stream: identical mispredict counts."""
        fast, slow, _ = both(build_indirect_kernel, levels=1)
        assert fast.branch_mispredictions == slow.branch_mispredictions


class TestCycleCoreBasics:
    def test_single_run_enforced(self):
        from repro.errors import SimulationError

        program, mem = build_counted_loop(10)
        core = CycleCore(program, mem, quick_config(100))
        core.run()
        with pytest.raises(SimulationError):
            core.run()

    def test_ipc_bounded_by_width(self):
        program, mem = build_counted_loop(400)
        result = CycleCore(program, mem, quick_config(1500)).run()
        assert 0 < result.ipc <= SimConfig().core.width

    def test_halts_at_program_end(self):
        program, mem = build_counted_loop(5)
        result = CycleCore(program, mem, quick_config(10_000)).run()
        assert result.instructions == 5 * 4 + 2 + 1

    def test_technique_label(self):
        program, mem = build_counted_loop(5)
        result = CycleCore(program, mem, quick_config(100)).run()
        assert result.technique == "ooo-cycle"
