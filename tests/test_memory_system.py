"""Unit tests for caches, MSHRs, DRAM, and the assembled hierarchy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig, MemoryConfig
from repro.memory import Cache, Dram, MemoryHierarchy, MSHRFile
from repro.memory.hierarchy import (
    LEVEL_DRAM,
    LEVEL_L1,
    LEVEL_L2,
    LEVEL_L3,
    LEVEL_MSHR,
    LEVEL_OFFCHIP,
    LEVEL_UNUSED,
)


def small_cache(size=1024, assoc=2, latency=4):
    return Cache("test", CacheConfig(size, assoc, latency=latency))


class TestCache:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert not cache.probe(5, cycle=10)
        cache.fill(5, fill_cycle=10)
        assert cache.probe(5, cycle=11)

    def test_future_fill_is_not_a_hit(self):
        cache = small_cache()
        cache.fill(5, fill_cycle=100)
        assert not cache.probe(5, cycle=50)
        assert cache.probe(5, cycle=100)

    def test_lru_eviction_order(self):
        cache = small_cache(size=2 * 64 * 1, assoc=2)  # 1 set, 2 ways
        assert cache.num_sets == 1
        cache.fill(1, 0)
        cache.fill(2, 0)
        cache.probe(1, 1)  # touch 1: now 2 is LRU
        victim = cache.fill(3, 2)
        assert victim == 2

    def test_probe_without_lru_update(self):
        cache = small_cache(size=2 * 64, assoc=2)
        cache.fill(1, 0)
        cache.fill(2, 0)
        cache.probe(1, 1, update_lru=False)
        victim = cache.fill(3, 2)
        assert victim == 1  # 1 stayed LRU

    def test_refill_keeps_earlier_availability(self):
        cache = small_cache()
        cache.fill(9, fill_cycle=10)
        cache.fill(9, fill_cycle=100)
        assert cache.probe(9, cycle=20)

    def test_invalidate(self):
        cache = small_cache()
        cache.fill(7, 0)
        cache.invalidate(7)
        assert not cache.probe(7, 1)

    def test_set_occupancy_bounded(self):
        cache = small_cache(size=4 * 64, assoc=4)
        for line in range(0, 100, cache.num_sets):
            cache.fill(line, 0)
        for bucket in cache._sets.values():
            assert len(bucket) <= cache.assoc

    def test_hit_rate(self):
        cache = small_cache()
        cache.fill(1, 0)
        cache.probe(1, 1)
        cache.probe(2, 1)
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_contains_is_stats_neutral(self):
        cache = small_cache()
        cache.fill(1, 0)
        hits, misses = cache.hits, cache.misses
        cache.contains(1, 5)
        assert (cache.hits, cache.misses) == (hits, misses)


class TestMSHR:
    def test_allocate_until_full(self):
        mshrs = MSHRFile(2)
        assert mshrs.allocate(1, cycle=0, ready=100)
        assert mshrs.allocate(2, cycle=0, ready=100)
        assert not mshrs.allocate(3, cycle=0, ready=100)
        assert mshrs.rejected_requests == 1

    def test_lazy_reclamation(self):
        mshrs = MSHRFile(1)
        mshrs.allocate(1, cycle=0, ready=50)
        assert not mshrs.available(cycle=49)
        assert mshrs.available(cycle=50)
        assert mshrs.allocate(2, cycle=50, ready=80)

    def test_merge_lookup(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(7, cycle=0, ready=100)
        assert mshrs.lookup(7, cycle=10) == 100
        assert mshrs.merged_requests == 1
        assert mshrs.lookup(7, cycle=150) is None  # already completed

    def test_next_free(self):
        mshrs = MSHRFile(2)
        mshrs.allocate(1, 0, 60)
        mshrs.allocate(2, 0, 40)
        assert mshrs.next_free(cycle=10) == 40
        assert mshrs.next_free(cycle=45) == 45

    def test_occupancy(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(1, 0, 100)
        mshrs.allocate(2, 0, 100)
        assert mshrs.occupancy(50) == 2
        assert mshrs.occupancy(100) == 0

    def test_mean_occupancy_simple(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(1, 0, 100)
        # One entry busy for 100 cycles of a 200-cycle run.
        assert mshrs.mean_occupancy(200) == pytest.approx(0.5)

    def test_mean_occupancy_clamped_at_capacity(self):
        mshrs = MSHRFile(2)
        # Lazy purging can admit overlapping intervals; the report clamps.
        mshrs.allocate(1, 0, 100)
        mshrs.allocate(2, 0, 100)
        mshrs._inflight.clear()  # simulate out-of-order purge artifact
        mshrs.allocate(3, 0, 100)
        assert mshrs.mean_occupancy(100) <= 2.0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MSHRFile(0)

    @given(
        intervals=st.lists(
            st.tuples(st.integers(0, 500), st.integers(1, 200)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=40)
    def test_mean_occupancy_matches_reference(self, intervals):
        mshrs = MSHRFile(1000)  # effectively unbounded
        horizon = 0
        for start, length in intervals:
            mshrs._interval_starts.append(start)
            mshrs._interval_ends.append(start + length)
            horizon = max(horizon, start + length)
        expected = sum(length for _, length in intervals) / horizon
        assert mshrs.mean_occupancy(horizon) == pytest.approx(expected)


class TestDram:
    def test_min_latency(self):
        dram = Dram(latency=200, bytes_per_cycle=64)
        assert dram.access(10) == 210

    def test_same_slot_contention(self):
        dram = Dram(latency=100, bytes_per_cycle=12.8)  # 5-cycle service
        first = dram.access(0)
        second = dram.access(0)
        assert second >= first + dram.service_cycles
        assert dram.contended_accesses == 1

    def test_order_insensitive(self):
        """A late access must not delay an earlier-in-time one."""
        dram = Dram(latency=100, bytes_per_cycle=12.8)
        dram.access(1000)  # processed first, happens late
        early = dram.access(0)  # happens early in wall-clock
        assert early == 100  # unaffected by the later transfer

    def test_utilization(self):
        dram = Dram(latency=10, bytes_per_cycle=12.8)
        for k in range(10):
            dram.access(k * 100)
        assert dram.utilization(1000) == pytest.approx(0.05)

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            Dram(latency=-1)
        with pytest.raises(ValueError):
            Dram(bytes_per_cycle=0)


def make_hierarchy(ideal=False):
    return MemoryHierarchy(MemoryConfig.scaled(), ideal=ideal)


class TestHierarchy:
    def test_cold_miss_goes_to_dram(self):
        h = make_hierarchy()
        result = h.access(0x10000, cycle=0)
        assert result.level == LEVEL_DRAM
        assert result.ready >= h.dram.latency

    def test_fill_then_l1_hit(self):
        h = make_hierarchy()
        first = h.access(0x10000, cycle=0)
        second = h.access(0x10000, cycle=first.ready + 1)
        assert second.level == LEVEL_L1
        assert second.ready == first.ready + 1 + h.l1.latency

    def test_inflight_merge(self):
        h = make_hierarchy()
        first = h.access(0x10000, cycle=0)
        merged = h.access(0x10008, cycle=10)  # same 64B line
        assert merged.level == LEVEL_MSHR
        assert merged.ready == first.ready

    def test_l2_hit_after_l1_eviction(self):
        h = make_hierarchy()
        h.access(0x10000, cycle=0)
        # Evict from tiny L1 by filling its set with conflicting lines.
        sets = h.l1.num_sets
        for k in range(1, h.l1.assoc + 2):
            h.access(0x10000 + k * sets * 64, cycle=1000 + k)
        result = h.access(0x10000, cycle=5000)
        assert result.level in (LEVEL_L2, LEVEL_L3)

    def test_demand_stats_counted(self):
        h = make_hierarchy()
        h.access(0x10000, cycle=0)
        h.access(0x20000, cycle=0, prefetch=True, source="runahead")
        assert h.stats.demand_loads == 1
        assert h.stats.prefetches_by_source["runahead"] == 1

    def test_write_does_not_take_mshr(self):
        h = make_hierarchy()
        h.access(0x10000, cycle=0, write=True)
        assert h.mshrs.occupancy(1) == 0

    def test_load_needs_mshr(self):
        h = make_hierarchy()
        assert h.load_needs_mshr(0x10000, 0)
        result = h.access(0x10000, cycle=0)
        assert not h.load_needs_mshr(0x10000, 1)  # in flight: merge
        assert not h.load_needs_mshr(0x10000, result.ready + 1)  # in L1

    def test_timeliness_l1_classification(self):
        h = make_hierarchy()
        fill = h.access(0x10000, cycle=0, prefetch=True, source="runahead")
        h.access(0x10000, cycle=fill.ready + 10)  # demand finds it in L1
        assert h.stats.timeliness == {LEVEL_L1: 1}

    def test_timeliness_late_prefetch_is_offchip(self):
        h = make_hierarchy()
        h.access(0x10000, cycle=0, prefetch=True, source="runahead")
        h.access(0x10000, cycle=5)  # demand arrives while still in flight
        assert h.stats.timeliness == {LEVEL_OFFCHIP: 1}

    def test_unused_prefetch_bucketed_at_finalize(self):
        h = make_hierarchy()
        h.access(0x10000, cycle=0, prefetch=True, source="runahead")
        h.finalize_timeliness()
        assert h.stats.timeliness == {LEVEL_UNUSED: 1}

    def test_dram_split_by_source(self):
        h = make_hierarchy()
        h.access(0x10000, cycle=0)
        h.access(0x20000, cycle=0, prefetch=True, source="runahead")
        assert h.dram_accesses("main") == 1
        assert h.dram_accesses("runahead") == 1
        assert h.dram_accesses() == 2

    def test_ideal_mode_l1_latency(self):
        h = make_hierarchy(ideal=True)
        result = h.access(0x10000, cycle=0)
        assert result.level == LEVEL_L1
        assert result.ready == h.l1.latency

    def test_ideal_mode_bandwidth_throttle(self):
        h = make_hierarchy(ideal=True)
        latest = 0
        # Sustained distinct-line demand far above channel bandwidth.
        for k in range(4000):
            latest = h.access(0x10000 + k * 64, cycle=k // 4).ready
        # Completion must lag the request stream once the lead is burnt.
        assert latest > 4000 // 4 + h.l1.latency
