"""Unit tests for caches, MSHRs, DRAM, and the assembled hierarchy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig, MemoryConfig
from repro.memory import Cache, Dram, MemoryHierarchy, MSHRFile
from repro.memory.hierarchy import (
    LEVEL_DRAM,
    LEVEL_L1,
    LEVEL_L2,
    LEVEL_L3,
    LEVEL_MSHR,
    LEVEL_OFFCHIP,
    LEVEL_UNUSED,
)


def small_cache(size=1024, assoc=2, latency=4):
    return Cache("test", CacheConfig(size, assoc, latency=latency))


class TestCache:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert not cache.probe(5, cycle=10)
        cache.fill(5, fill_cycle=10)
        assert cache.probe(5, cycle=11)

    def test_future_fill_is_not_a_hit(self):
        cache = small_cache()
        cache.fill(5, fill_cycle=100)
        assert not cache.probe(5, cycle=50)
        assert cache.probe(5, cycle=100)

    def test_lru_eviction_order(self):
        cache = small_cache(size=2 * 64 * 1, assoc=2)  # 1 set, 2 ways
        assert cache.num_sets == 1
        cache.fill(1, 0)
        cache.fill(2, 0)
        cache.probe(1, 1)  # touch 1: now 2 is LRU
        victim = cache.fill(3, 2)
        assert victim == 2

    def test_probe_without_lru_update(self):
        cache = small_cache(size=2 * 64, assoc=2)
        cache.fill(1, 0)
        cache.fill(2, 0)
        cache.probe(1, 1, update_lru=False)
        victim = cache.fill(3, 2)
        assert victim == 1  # 1 stayed LRU

    def test_refill_keeps_earlier_availability(self):
        cache = small_cache()
        cache.fill(9, fill_cycle=10)
        cache.fill(9, fill_cycle=100)
        assert cache.probe(9, cycle=20)

    def test_invalidate(self):
        cache = small_cache()
        cache.fill(7, 0)
        cache.invalidate(7)
        assert not cache.probe(7, 1)

    def test_set_occupancy_bounded(self):
        cache = small_cache(size=4 * 64, assoc=4)
        for line in range(0, 100, cache.num_sets):
            cache.fill(line, 0)
        for bucket in cache._sets.values():
            assert len(bucket) <= cache.assoc

    def test_hit_rate(self):
        cache = small_cache()
        cache.fill(1, 0)
        cache.probe(1, 1)
        cache.probe(2, 1)
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_contains_is_stats_neutral(self):
        cache = small_cache()
        cache.fill(1, 0)
        hits, misses = cache.hits, cache.misses
        cache.contains(1, 5)
        assert (cache.hits, cache.misses) == (hits, misses)


class TestMSHR:
    def test_allocate_until_full(self):
        mshrs = MSHRFile(2)
        assert mshrs.allocate(1, cycle=0, ready=100)
        assert mshrs.allocate(2, cycle=0, ready=100)
        assert not mshrs.allocate(3, cycle=0, ready=100)
        assert mshrs.rejected_requests == 1

    def test_lazy_reclamation(self):
        mshrs = MSHRFile(1)
        mshrs.allocate(1, cycle=0, ready=50)
        assert not mshrs.available(cycle=49)
        assert mshrs.available(cycle=50)
        assert mshrs.allocate(2, cycle=50, ready=80)

    def test_merge_lookup(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(7, cycle=0, ready=100)
        assert mshrs.lookup(7, cycle=10) == 100
        assert mshrs.merged_requests == 1
        assert mshrs.lookup(7, cycle=150) is None  # already completed

    def test_next_free(self):
        mshrs = MSHRFile(2)
        mshrs.allocate(1, 0, 60)
        mshrs.allocate(2, 0, 40)
        assert mshrs.next_free(cycle=10) == 40
        assert mshrs.next_free(cycle=45) == 45

    def test_occupancy(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(1, 0, 100)
        mshrs.allocate(2, 0, 100)
        assert mshrs.occupancy(50) == 2
        assert mshrs.occupancy(100) == 0

    def test_mean_occupancy_simple(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(1, 0, 100)
        # One entry busy for 100 cycles of a 200-cycle run.
        assert mshrs.mean_occupancy(200) == pytest.approx(0.5)

    def test_mean_occupancy_clamped_at_capacity(self):
        mshrs = MSHRFile(2)
        # Lazy purging can admit overlapping intervals; the report clamps.
        mshrs.allocate(1, 0, 100)
        mshrs.allocate(2, 0, 100)
        mshrs._inflight.clear()  # simulate out-of-order purge artifact
        mshrs.allocate(3, 0, 100)
        assert mshrs.mean_occupancy(100) <= 2.0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MSHRFile(0)

    def test_peek_is_stats_neutral(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(7, cycle=0, ready=100)
        assert mshrs.peek(7, cycle=10) == 100
        assert mshrs.peek(7, cycle=150) is None  # already completed
        assert mshrs.merged_requests == 0
        assert mshrs.lookup(7, cycle=10) == 100
        assert mshrs.merged_requests == 1

    def test_peak_occupancy_tracking(self):
        mshrs = MSHRFile(4)
        assert mshrs.peak_occupancy == 0
        mshrs.allocate(1, 0, 50)
        mshrs.allocate(2, 0, 50)
        assert mshrs.peak_occupancy == 2
        # Reclaim, then allocate once more: the peak is sticky.
        mshrs.allocate(3, 60, 90)
        assert mshrs.occupancy(70) == 1
        assert mshrs.peak_occupancy == 2

    def test_mean_occupancy_clamp_exact_value(self):
        mshrs = MSHRFile(2)
        # Three fully overlapping intervals can only ever occupy the
        # 2-entry file; the sweep must clamp 3 concurrent down to 2.
        mshrs._interval_starts.extend([0, 0, 0])
        mshrs._interval_ends.extend([100, 100, 100])
        assert mshrs.mean_occupancy(100) == pytest.approx(2.0)

    def test_mean_occupancy_clips_at_horizon(self):
        mshrs = MSHRFile(4)
        # In flight at run end: only the first 50 cycles are measured.
        mshrs.allocate(1, 0, 100)
        assert mshrs.mean_occupancy(50) == pytest.approx(1.0)

    def test_mean_occupancy_interval_beyond_horizon(self):
        mshrs = MSHRFile(4)
        # Starts after the measured window: contributes nothing.
        mshrs.allocate(1, 60, 80)
        assert mshrs.mean_occupancy(50) == pytest.approx(0.0)

    def test_mean_occupancy_zero_length_intervals(self):
        mshrs = MSHRFile(4)
        # ready == cycle: zero busy time, no interval recorded.
        mshrs.allocate(1, 5, 5)
        assert mshrs.occupancy_integral == 0
        assert mshrs.interval_integral() == 0
        assert mshrs.mean_occupancy(100) == pytest.approx(0.0)

    def test_mean_occupancy_zero_horizon(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(1, 0, 100)
        assert mshrs.mean_occupancy(0) == 0.0

    def test_interval_integral_matches_occupancy_integral(self):
        mshrs = MSHRFile(8)
        for k, (cycle, ready) in enumerate([(0, 40), (10, 10), (20, 90)]):
            mshrs.allocate(k, cycle, ready)
        assert mshrs.interval_integral() == mshrs.occupancy_integral

    def test_inflight_snapshot(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(3, cycle=0, ready=70)
        snapshot = mshrs.inflight()
        assert snapshot == {3: 70}
        snapshot[3] = 0  # mutating the copy leaves the file untouched
        assert mshrs.inflight() == {3: 70}

    @given(
        intervals=st.lists(
            st.tuples(st.integers(0, 500), st.integers(1, 200)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=40)
    def test_mean_occupancy_matches_reference(self, intervals):
        mshrs = MSHRFile(1000)  # effectively unbounded
        horizon = 0
        for start, length in intervals:
            mshrs._interval_starts.append(start)
            mshrs._interval_ends.append(start + length)
            horizon = max(horizon, start + length)
        expected = sum(length for _, length in intervals) / horizon
        assert mshrs.mean_occupancy(horizon) == pytest.approx(expected)


class TestDram:
    def test_min_latency(self):
        dram = Dram(latency=200, bytes_per_cycle=64)
        assert dram.access(10) == 210

    def test_same_slot_contention(self):
        dram = Dram(latency=100, bytes_per_cycle=12.8)  # 5-cycle service
        first = dram.access(0)
        second = dram.access(0)
        assert second >= first + dram.service_cycles
        assert dram.contended_accesses == 1

    def test_order_insensitive(self):
        """A late access must not delay an earlier-in-time one."""
        dram = Dram(latency=100, bytes_per_cycle=12.8)
        dram.access(1000)  # processed first, happens late
        early = dram.access(0)  # happens early in wall-clock
        assert early == 100  # unaffected by the later transfer

    def test_utilization(self):
        dram = Dram(latency=10, bytes_per_cycle=12.8)
        for k in range(10):
            dram.access(k * 100)
        assert dram.utilization(1000) == pytest.approx(0.05)

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            Dram(latency=-1)
        with pytest.raises(ValueError):
            Dram(bytes_per_cycle=0)


def make_hierarchy(ideal=False):
    return MemoryHierarchy(MemoryConfig.scaled(), ideal=ideal)


def tiny_hierarchy():
    """2-line L1, 4-line L2, 8-line L3, all direct-mapped.

    Small enough that single accesses force evictions, which is what
    the inclusion/timeliness tests need.
    """
    config = MemoryConfig(
        l1d=CacheConfig(128, 1, latency=4),
        l2=CacheConfig(256, 1, latency=8),
        l3=CacheConfig(512, 1, latency=30),
        l1d_mshrs=8,
    )
    return MemoryHierarchy(config)


class TestHierarchy:
    def test_cold_miss_goes_to_dram(self):
        h = make_hierarchy()
        result = h.access(0x10000, cycle=0)
        assert result.level == LEVEL_DRAM
        assert result.ready >= h.dram.latency

    def test_fill_then_l1_hit(self):
        h = make_hierarchy()
        first = h.access(0x10000, cycle=0)
        second = h.access(0x10000, cycle=first.ready + 1)
        assert second.level == LEVEL_L1
        assert second.ready == first.ready + 1 + h.l1.latency

    def test_inflight_merge(self):
        h = make_hierarchy()
        first = h.access(0x10000, cycle=0)
        merged = h.access(0x10008, cycle=10)  # same 64B line
        assert merged.level == LEVEL_MSHR
        assert merged.ready == first.ready

    def test_l2_hit_after_l1_eviction(self):
        h = make_hierarchy()
        h.access(0x10000, cycle=0)
        # Evict from tiny L1 by filling its set with conflicting lines.
        sets = h.l1.num_sets
        for k in range(1, h.l1.assoc + 2):
            h.access(0x10000 + k * sets * 64, cycle=1000 + k)
        result = h.access(0x10000, cycle=5000)
        assert result.level in (LEVEL_L2, LEVEL_L3)

    def test_demand_stats_counted(self):
        h = make_hierarchy()
        h.access(0x10000, cycle=0)
        h.access(0x20000, cycle=0, prefetch=True, source="runahead")
        assert h.stats.demand_loads == 1
        assert h.stats.prefetches_by_source["runahead"] == 1

    def test_write_does_not_take_mshr(self):
        h = make_hierarchy()
        h.access(0x10000, cycle=0, write=True)
        assert h.mshrs.occupancy(1) == 0

    def test_load_needs_mshr(self):
        h = make_hierarchy()
        assert h.load_needs_mshr(0x10000, 0)
        result = h.access(0x10000, cycle=0)
        assert not h.load_needs_mshr(0x10000, 1)  # in flight: merge
        assert not h.load_needs_mshr(0x10000, result.ready + 1)  # in L1

    def test_timeliness_l1_classification(self):
        h = make_hierarchy()
        fill = h.access(0x10000, cycle=0, prefetch=True, source="runahead")
        h.access(0x10000, cycle=fill.ready + 10)  # demand finds it in L1
        assert h.stats.timeliness == {LEVEL_L1: 1}

    def test_timeliness_late_prefetch_is_offchip(self):
        h = make_hierarchy()
        h.access(0x10000, cycle=0, prefetch=True, source="runahead")
        h.access(0x10000, cycle=5)  # demand arrives while still in flight
        assert h.stats.timeliness == {LEVEL_OFFCHIP: 1}

    def test_unused_prefetch_bucketed_at_finalize(self):
        h = make_hierarchy()
        h.access(0x10000, cycle=0, prefetch=True, source="runahead")
        h.finalize_timeliness()
        assert h.stats.timeliness == {LEVEL_UNUSED: 1}

    def test_dram_split_by_source(self):
        h = make_hierarchy()
        h.access(0x10000, cycle=0)
        h.access(0x20000, cycle=0, prefetch=True, source="runahead")
        assert h.dram_accesses("main") == 1
        assert h.dram_accesses("runahead") == 1
        assert h.dram_accesses() == 2

    def test_ideal_mode_l1_latency(self):
        h = make_hierarchy(ideal=True)
        result = h.access(0x10000, cycle=0)
        assert result.level == LEVEL_L1
        assert result.ready == h.l1.latency

    def test_ideal_mode_bandwidth_throttle(self):
        h = make_hierarchy(ideal=True)
        latest = 0
        # Sustained distinct-line demand far above channel bandwidth.
        for k in range(4000):
            latest = h.access(0x10000 + k * 64, cycle=k // 4).ready
        # Completion must lag the request stream once the lead is burnt.
        assert latest > 4000 // 4 + h.l1.latency


class TestHierarchyInvariants:
    """Laws the `repro.audit` checks enforce, exercised directly."""

    def test_timeliness_l2_bucket(self):
        h = tiny_hierarchy()
        r = h.access(0, cycle=0, prefetch=True, source="runahead").ready
        # Line 2 shares L1 set 0 with line 0 but lands in L2 set 2, so
        # the demand below finds the prefetched line one level down.
        t = h.access(128, cycle=r + 100).ready + 100
        h.access(0, cycle=t)
        assert h.stats.timeliness == {LEVEL_L2: 1}

    def test_timeliness_l3_bucket(self):
        h = tiny_hierarchy()
        r = h.access(0, cycle=0, prefetch=True, source="runahead").ready
        # Line 4 conflicts with line 0 in both L1 (set 0) and L2 (set 0)
        # but has its own L3 set, pushing line 0 out to the LLC only.
        t = h.access(256, cycle=r + 100).ready + 100
        h.access(0, cycle=t)
        assert h.stats.timeliness == {LEVEL_L3: 1}

    def test_prefetch_tracked_counts_unique_lines(self):
        h = tiny_hierarchy()
        r = h.access(0, cycle=0, prefetch=True, source="runahead").ready
        h.access(0, cycle=5, prefetch=True, source="runahead")  # still pending
        assert h.stats.prefetch_tracked == 1
        h.access(0, cycle=r + 10)  # demand classifies and untracks it
        h.access(0, cycle=r + 20, prefetch=True, source="runahead")
        assert h.stats.prefetch_tracked == 2
        h.finalize_timeliness()
        # The audit law: buckets partition the tracked lines.
        assert sum(h.stats.timeliness.values()) == h.stats.prefetch_tracked

    def test_l3_fill_invalidates_victim_inward(self):
        h = tiny_hierarchy()
        h.l3 = Cache("L3", CacheConfig(64, 1, latency=30))  # one line total
        h.l1.fill(1, 0)
        h.l2.fill(1, 0)
        h.l3.fill(1, 0)
        h._fill_l3(2, 10)  # evicts line 1 from the LLC
        assert not h.l2.contains(1, 20)
        assert not h.l1.contains(1, 20)

    def test_l2_fill_invalidates_victim_from_l1(self):
        h = tiny_hierarchy()
        h.l2 = Cache("L2", CacheConfig(64, 1, latency=8))
        h.l1.fill(1, 0)
        h.l2.fill(1, 0)
        h._fill_l2(2, 10)
        assert not h.l1.contains(1, 20)

    def test_inclusion_holds_under_conflict_evictions(self):
        h = tiny_hierarchy()
        # Hammer conflicting lines; inclusion must hold throughout.
        t = 0
        for k in range(24):
            t = h.access((k % 12) * 64, cycle=t + 1).ready
        for inner, outer in ((h.l1, h.l2), (h.l2, h.l3)):
            for line in inner.lines():
                assert line in outer.lines(), f"{line} orphaned in {inner.name}"

    def test_prefetch_outcomes_per_level(self):
        h = tiny_hierarchy()
        r = h.access(0, cycle=0, prefetch=True, source="runahead").ready  # DRAM
        h.access(8, cycle=5, prefetch=True, source="runahead")  # merges in MSHR
        h.access(0, cycle=r + 10, prefetch=True, source="runahead")  # L1 hit
        t = h.access(128, cycle=r + 100).ready + 100  # evict line 0 from L1
        h.access(0, cycle=t, prefetch=True, source="runahead")  # L2 hit
        t = h.access(256, cycle=t + 100).ready + 100  # push line 0 to the LLC
        h.access(0, cycle=t, prefetch=True, source="runahead")  # L3 hit
        assert h.stats.prefetch_outcomes == {
            "runahead.DRAM": 1,
            "runahead.MSHR": 1,
            "runahead.L1": 1,
            "runahead.L2": 1,
            "runahead.L3": 1,
        }
        issued = h.stats.prefetches_by_source["runahead"]
        assert sum(h.stats.prefetch_outcomes.values()) == issued
        # The legacy counter stays the L1 column of the breakdown.
        assert h.stats.prefetch_already_cached == 1
        # Only the real merge counted, on both sides of the boundary.
        assert h.stats.mshr_merge_hits == 1
        assert h.mshrs.merged_requests == 1

    def test_published_counters_include_outcome_family(self):
        from repro.observability import CounterRegistry

        h = tiny_hierarchy()
        r = h.access(0, cycle=0, prefetch=True, source="runahead").ready
        h.access(0, cycle=r + 10)
        registry = CounterRegistry()
        h.publish_counters(registry, cycles=r + 100)
        snapshot = registry.snapshot()
        assert snapshot["mem.prefetch.outcome.runahead.DRAM"] == 1
        assert snapshot["mem.prefetch.tracked"] == 1
        assert snapshot["mem.mshr.file_merges"] == 0
        assert snapshot["mem.mshr.peak_occupancy"] == 1
