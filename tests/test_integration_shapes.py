"""Integration tests asserting the paper's qualitative results.

These are the reproduction's acceptance tests: each encodes a *shape*
from the evaluation section (who wins, where, and in which direction
trends move), at instruction budgets small enough for CI.
"""

import pytest

from repro.config import CoreConfig, SimConfig
from repro.experiments import run_simulation

BUDGET = 6_000


def ipc(workload, technique, rob=None, budget=BUDGET, input_name=None):
    cfg = SimConfig()
    if rob is not None:
        cfg = cfg.with_core(CoreConfig().with_scaled_backend(rob))
    return run_simulation(
        workload, technique, cfg, max_instructions=budget, input_name=input_name
    )


class TestHeadlineOrdering:
    """Figure 7: DVR is the best real technique; Oracle bounds everything."""

    @pytest.mark.parametrize("workload", ["camel", "kangaroo", "graph500"])
    def test_dvr_beats_baseline(self, workload):
        assert ipc(workload, "dvr").ipc > 1.2 * ipc(workload, "ooo").ipc

    @pytest.mark.parametrize("workload", ["camel", "hj8", "bfs"])
    def test_oracle_is_upper_bound(self, workload):
        oracle = ipc(workload, "oracle").ipc
        for tech in ("ooo", "vr", "dvr"):
            assert oracle >= ipc(workload, tech).ipc

    @pytest.mark.parametrize("workload", ["camel", "bfs", "nas_cg"])
    def test_dvr_at_least_matches_vr(self, workload):
        """Section 6.1: DVR delivers ~2x over VR on the 350-entry ROB."""
        assert ipc(workload, "dvr").ipc >= ipc(workload, "vr").ipc

    def test_dvr_roughly_2x_vr_on_multilevel_chain(self):
        vr = ipc("hj8", "vr", budget=8000).ipc
        dvr = ipc("hj8", "dvr", budget=8000).ipc
        assert dvr / vr > 1.2


class TestFigure2Trend:
    """VR's gain shrinks with ROB size; the OoO baseline grows."""

    def test_vr_speedup_larger_on_small_rob(self):
        small = ipc("camel", "vr", rob=128).ipc / ipc("camel", "ooo", rob=128).ipc
        large = ipc("camel", "vr", rob=512).ipc / ipc("camel", "ooo", rob=512).ipc
        assert small > large

    def test_baseline_scales_with_rob(self):
        assert ipc("camel", "ooo", rob=512).ipc > ipc("camel", "ooo", rob=128).ipc

    def test_stall_time_falls_with_rob(self):
        small = ipc("camel", "ooo", rob=128).full_rob_stall_fraction
        large = ipc("camel", "ooo", rob=512).full_rob_stall_fraction
        assert small >= large


class TestFigure12Trend:
    """DVR's speedup holds as the ROB grows (unlike VR's)."""

    def test_dvr_speedup_persists_at_512(self):
        speedup = (
            ipc("graph500", "dvr", rob=512, budget=8000).ipc
            / ipc("graph500", "ooo", rob=512, budget=8000).ipc
        )
        assert speedup > 1.15

    def test_dvr_decay_much_smaller_than_vr_decay(self):
        def speedup(tech, rob):
            return ipc("camel", tech, rob=rob).ipc / ipc("camel", "ooo", rob=rob).ipc

        vr_decay = speedup("vr", 128) - speedup("vr", 512)
        dvr_decay = speedup("dvr", 128) - speedup("dvr", 512)
        assert dvr_decay < vr_decay


class TestFigure9MLP:
    """DVR sustains far more outstanding misses than the baseline."""

    @pytest.mark.parametrize("workload", ["camel", "kangaroo"])
    def test_dvr_mlp_exceeds_baseline(self, workload):
        base = ipc(workload, "ooo").mean_mshr_occupancy
        dvr = ipc(workload, "dvr").mean_mshr_occupancy
        assert dvr > base


class TestFigure10Accuracy:
    """Discovery Mode keeps DVR's traffic lower than blind vectorisation."""

    @pytest.mark.parametrize("workload", ["bfs", "sssp"])
    def test_offload_overfetches_vs_full_dvr(self, workload):
        """The paper's Discovery-Mode case: on bc/bfs/sssp blind
        vectorisation fetches data the true execution never touches."""
        offload = ipc(workload, "dvr-offload", budget=8000)
        full = ipc(workload, "dvr", budget=8000)
        # More runahead DRAM traffic...
        assert offload.dram_by_source.get("runahead", 0) > full.dram_by_source.get(
            "runahead", 0
        )

        # ...and a larger fraction of it never used.
        def waste(result):
            t = result.timeliness
            used = sum(t.get(k, 0) for k in ("L1", "L2", "L3", "Off-chip"))
            unused = t.get("Unused", 0)
            return unused / max(1, used + unused)

        assert waste(offload) > waste(full)

    def test_dvr_shifts_traffic_to_runahead(self):
        result = ipc("camel", "dvr")
        assert result.dram_by_source.get("runahead", 0) > result.dram_by_source.get(
            "main", 0
        )


class TestFigure11Timeliness:
    def test_most_demanded_prefetches_hit_on_chip(self):
        result = ipc("camel", "dvr", budget=8000)
        t = result.timeliness
        on_chip = t.get("L1", 0) + t.get("L2", 0) + t.get("L3", 0)
        demanded = on_chip + t.get("Off-chip", 0)
        assert demanded > 0
        assert on_chip / demanded > 0.5


class TestIMPCharacter:
    """Section 6.1: IMP handles simple indirection, fails on complex."""

    def test_imp_strong_on_nas_is(self):
        assert ipc("nas_is", "imp").ipc > 1.15 * ipc("nas_is", "ooo").ipc

    def test_imp_useless_on_camel(self):
        assert ipc("camel", "imp").ipc <= 1.05 * ipc("camel", "ooo").ipc

    def test_dvr_beats_imp_on_hash_chains(self):
        assert ipc("hj2", "dvr").ipc > 1.2 * ipc("hj2", "imp").ipc


class TestInputSensitivity:
    """Table 2 / Section 6.1: UR (uniform, short vertices) is the hard
    input; power-law KR gives DVR long inner loops to vectorise."""

    def test_dvr_gains_on_both_input_classes(self):
        for input_name in ("KR", "UR"):
            base = ipc("bfs", "ooo", input_name=input_name).ipc
            dvr = ipc("bfs", "dvr", input_name=input_name).ipc
            assert dvr > base

    def test_nested_mode_engages_on_ur(self):
        result = ipc("bfs", "dvr", input_name="UR", budget=8000)
        assert result.technique_stats["nested_spawns"] > 0


class TestBreakdown:
    """Figure 8: each DVR ingredient contributes."""

    def test_offload_already_beats_vr(self):
        vr = ipc("graph500", "vr", budget=8000).ipc
        offload = ipc("graph500", "dvr-offload", budget=8000).ipc
        assert offload > vr
