"""Property tests (hypothesis) for the event scheduler.

Pins the four laws the event kernels lean on:

* randomized insertion/cancellation never loses a wakeup — every
  scheduled event is fired, cancelled, or still pending (conservation);
* time never moves backwards — scheduling into the past or draining
  out of order raises instead of warping;
* skipping an idle span is observationally equivalent to ticking
  through it cycle by cycle;
* an empty queue with an unretired ROB head is detected as a deadlock
  (raises), not an infinite hang.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cycle import find_next_wakeup
from repro.core.sched import WakeupQueue
from repro.errors import SimulationError

# op encoding for random programs: (kind, value)
#   kind 0: schedule at now + value
#   kind 1: cancel the value-th oldest live token (no-op when none)
#   kind 2: drain up to now + value
_OPS = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 50)),
    min_size=1,
    max_size=200,
)


@settings(max_examples=200, deadline=None)
@given(_OPS)
def test_random_programs_conserve_and_never_lose_wakeups(ops):
    queue = WakeupQueue()
    live = []  # tokens we believe are pending
    outcomes = {}  # token -> "fired" | "cancelled"
    times = {}
    for kind, value in ops:
        if kind == 0:
            time = queue.now + value
            token = queue.schedule(time)
            live.append(token)
            times[token] = time
        elif kind == 1 and live:
            token = live.pop(value % len(live))
            assert queue.cancel(token) is True
            outcomes[token] = "cancelled"
            # a second cancel is a no-op, not a double count
            assert queue.cancel(token) is False
        elif kind == 2:
            now = queue.now + value
            fired = queue.pop_due(now)
            for time, token, _payload in fired:
                assert time <= now
                assert times[token] == time
                live.remove(token)
                outcomes[token] = "fired"
            # nothing due was left behind
            nxt = queue.next_time()
            assert nxt is None or nxt > now
        # conservation holds after every single operation
        assert queue.scheduled == queue.fired + queue.cancelled + queue.pending
        assert queue.pending == len(live)
    # end-of-program: every token is accounted for exactly once
    assert queue.scheduled == len(outcomes) + len(live)


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 100), st.integers(1, 100))
def test_time_never_moves_backwards(start, back):
    queue = WakeupQueue()
    queue.pop_due(start)
    assert queue.now == start
    with pytest.raises(SimulationError):
        queue.schedule(start - back)
    with pytest.raises(SimulationError):
        queue.pop_due(start - back)
    with pytest.raises(SimulationError):
        queue.skip_to(start - back)
    # the failed operations must not corrupt the books
    assert queue.scheduled == queue.fired + queue.cancelled + queue.pending


@settings(max_examples=200, deadline=None)
@given(
    st.lists(st.integers(1, 200), min_size=1, max_size=20),
    st.integers(0, 220),
)
def test_skipping_equals_ticking(times, horizon):
    """pop_due(horizon) == the fold of pop_due over every cycle in between."""
    ticked = WakeupQueue()
    skipped = WakeupQueue()
    for time in times:
        ticked.schedule(time)
        skipped.schedule(time)
    fired_ticking = []
    for now in range(horizon + 1):
        fired_ticking.extend(t for t, _tok, _p in ticked.pop_due(now))
    fired_skipping = [t for t, _tok, _p in skipped.pop_due(horizon)]
    assert fired_ticking == sorted(t for t in times if t <= horizon)
    assert sorted(fired_skipping) == fired_ticking
    assert ticked.now == skipped.now == horizon
    assert ticked.pending == skipped.pending


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(1, 200), min_size=0, max_size=10), st.integers(0, 200))
def test_skip_to_refuses_to_swallow_wakeups(times, target):
    queue = WakeupQueue()
    for time in times:
        queue.schedule(time)
    pending_min = min(times) if times else None
    if pending_min is not None and pending_min <= target:
        with pytest.raises(SimulationError):
            queue.skip_to(target)
    else:
        assert queue.skip_to(target) == target
        assert queue.now == target
    assert queue.pending == len(times)  # skipping fires nothing


@settings(max_examples=200, deadline=None)
@given(st.lists(st.integers(1, 500), min_size=1, max_size=16))
def test_find_next_wakeup_returns_min_and_conserves(candidates):
    queue = WakeupQueue()
    wake = find_next_wakeup(candidates, rob_occupied=True, queue=queue)
    assert wake == min(candidates)
    # every candidate was scheduled, the due ones fired, the rest
    # cancelled — nothing left pending to leak across spans
    assert queue.scheduled == len(candidates)
    assert queue.fired == candidates.count(wake)
    assert queue.cancelled == len(candidates) - queue.fired
    assert queue.pending == 0


def test_empty_queue_with_unretired_rob_head_is_deadlock():
    with pytest.raises(SimulationError, match="deadlock"):
        find_next_wakeup([], rob_occupied=True, queue=WakeupQueue())


def test_empty_queue_with_empty_rob_still_raises():
    # quiescence without program completion is a kernel bug either way;
    # it must surface as an error, never as an infinite idle loop
    with pytest.raises(SimulationError, match="no pending wakeup"):
        find_next_wakeup([], rob_occupied=False, queue=WakeupQueue())


def test_deadlock_detection_on_a_fabricated_stall():
    """A ROB head whose wakeup was cancelled deadlocks loudly."""
    queue = WakeupQueue()
    token = queue.schedule(40)
    queue.cancel(token)
    with pytest.raises(SimulationError, match="deadlock"):
        find_next_wakeup([], rob_occupied=True, queue=queue)
