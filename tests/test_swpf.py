"""Tests for the PREFETCH opcode and the software-prefetching pass."""

import numpy as np
import pytest

from repro.core import FunctionalCore, OoOCore
from repro.errors import AssemblyError
from repro.experiments import run_simulation
from repro.isa import Opcode, ProgramBuilder, insert_software_prefetches
from repro.isa.swpf import _find_indirect_pairs, _find_innermost_loop
from repro.memory import MemoryImage

from conftest import build_indirect_kernel, quick_config


class TestPrefetchOpcode:
    def test_functional_noop(self):
        mem = MemoryImage()
        seg = mem.allocate("a", [5])
        b = ProgramBuilder()
        b.li("r1", seg.base)
        b.prefetch("r1")
        b.load("r2", "r1")
        core = FunctionalCore(b.build(), mem)
        core.run_to_completion()
        assert core.regs[2] == 5

    def test_never_faults_on_garbage_address(self):
        mem = MemoryImage()
        mem.allocate("a", [5])
        b = ProgramBuilder()
        b.li("r1", 0x5BAD0000)
        b.prefetch("r1")
        core = FunctionalCore(b.build(), mem)
        core.run_to_completion()  # must not raise

    def test_timing_issues_hierarchy_prefetch(self):
        mem = MemoryImage()
        seg = mem.allocate("a", list(range(64)))
        b = ProgramBuilder()
        b.li("r1", seg.base)
        b.prefetch("r1", 256)
        result = OoOCore(b.build(), mem, quick_config(10)).run()
        assert result.prefetches_by_source.get("prefetcher", 0) == 1

    def test_unmapped_prefetch_dropped_in_timing(self):
        mem = MemoryImage()
        mem.allocate("a", [1])
        b = ProgramBuilder()
        b.li("r1", 0x7F000000)
        b.prefetch("r1")
        result = OoOCore(b.build(), mem, quick_config(10)).run()
        assert result.prefetches_by_source.get("prefetcher", 0) == 0

    def test_classification(self):
        from repro.isa.instructions import Instruction

        instr = Instruction(Opcode.PREFETCH, rs1=1, imm=8)
        assert instr.is_prefetch and instr.is_mem
        assert not instr.is_load and not instr.is_store
        assert "prefetch" in str(instr)


class TestLoopAnalysis:
    def test_finds_innermost_loop(self):
        program, _ = build_indirect_kernel(levels=1)
        loop = _find_innermost_loop(program)
        assert loop is not None
        assert program[loop.branch_pc].is_conditional_branch
        assert loop.step == 1

    def test_finds_indirect_pair(self):
        program, _ = build_indirect_kernel(levels=1)
        loop = _find_innermost_loop(program)
        pairs = _find_indirect_pairs(program, loop)
        assert len(pairs) == 1

    def test_no_loop_returns_program_unchanged(self):
        b = ProgramBuilder()
        b.li("r1", 1)
        b.addi("r1", "r1", 2)
        program = b.build()
        assert insert_software_prefetches(program) is program

    def test_no_indirection_returns_unchanged(self):
        from conftest import build_counted_loop

        program, _ = build_counted_loop(10)
        assert insert_software_prefetches(program) is program


class TestTransformation:
    def test_inserts_prefetch_and_guard(self):
        program, _ = build_indirect_kernel(levels=1)
        transformed = insert_software_prefetches(program)
        ops = [instr.opcode for instr in transformed]
        assert Opcode.PREFETCH in ops
        assert len(transformed) > len(program)

    def test_functional_equivalence(self):
        program, mem = build_indirect_kernel(n=512, levels=1, seed=7)
        program_ref, mem_ref = build_indirect_kernel(n=512, levels=1, seed=7)
        FunctionalCore(program_ref, mem_ref).run_to_completion(1_000_000)
        FunctionalCore(
            insert_software_prefetches(program), mem
        ).run_to_completion(1_000_000)
        for seg in mem_ref.segments():
            assert np.array_equal(mem.segment(seg.name).data, seg.data)

    def test_lookahead_never_reads_out_of_bounds(self):
        """The guard keeps the look-ahead index load in bounds even at
        the very end of the loop — a functional run must not fault."""
        program, mem = build_indirect_kernel(n=64, levels=1)
        FunctionalCore(
            insert_software_prefetches(program, distance=48), mem
        ).run_to_completion(1_000_000)

    def test_speeds_up_indirect_kernel(self):
        base = run_simulation("nas_is", "ooo", max_instructions=6000)
        swpf = run_simulation("nas_is", "swpf", max_instructions=6000)
        assert swpf.technique == "swpf"
        assert swpf.ipc > 1.2 * base.ipc

    def test_distance_parameter(self):
        program, _ = build_indirect_kernel(levels=1)
        near = insert_software_prefetches(program, distance=2)
        far = insert_software_prefetches(program, distance=64)
        # Same structure, different look-ahead immediates.
        addis_near = [i.imm for i in near if i.opcode is Opcode.ADDI]
        addis_far = [i.imm for i in far if i.opcode is Opcode.ADDI]
        assert 2 in addis_near and 64 in addis_far

    def test_labels_preserved(self):
        program, _ = build_indirect_kernel(levels=1)
        transformed = insert_software_prefetches(program)
        assert set(program.labels) == set(transformed.labels)

    def test_scratch_register_exhaustion(self):
        b = ProgramBuilder()
        # Touch every register so no scratch remains...
        for reg in range(1, 32):
            b.li(f"r{reg}", reg)
        mem = MemoryImage()
        a = mem.allocate("A", list(range(64)))
        bseg = mem.allocate("B", list(range(64)))
        b.li("r1", a.base)
        b.li("r2", bseg.base)
        b.li("r3", 0)
        b.li("r4", 16)
        b.label("loop")
        b.shli("r5", "r3", 3)
        b.add("r5", "r1", "r5")
        b.load("r6", "r5")
        b.shli("r7", "r6", 3)
        b.add("r7", "r2", "r7")
        b.load("r8", "r7")
        b.addi("r3", "r3", 1)
        b.cmp_lt("r9", "r3", "r4")
        b.bnz("r9", "loop")
        with pytest.raises(AssemblyError):
            insert_software_prefetches(b.build())

    def test_runahead_engines_skip_prefetch_hints(self):
        """DVR over a swpf-transformed program must not crash or double
        count the hint instructions in its chains."""
        result = run_simulation("kangaroo", "dvr", max_instructions=4000)
        program, mem = build_indirect_kernel(levels=1)
        transformed = insert_software_prefetches(program)
        from repro.techniques import make_technique

        core = OoOCore(
            transformed, mem, quick_config(4000), technique=make_technique("dvr")
        )
        dvr_result = core.run()
        assert dvr_result.instructions > 0
