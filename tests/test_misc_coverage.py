"""Remaining odds and ends: result serialisation, figure series
payloads, determinism guarantees, and package surface checks."""

import json

import pytest

import repro
from repro.experiments import figure2, run_simulation
from repro.workloads import build_workload


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_public_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_run_simulation_in_top_level(self):
        assert repro.run_simulation is run_simulation


class TestResultSerialisation:
    def test_to_dict_is_json_safe(self):
        result = run_simulation("nas_is", "dvr", max_instructions=1500)
        payload = json.dumps(result.to_dict())
        parsed = json.loads(payload)
        assert parsed["technique"] == "dvr"
        assert parsed["ipc"] == pytest.approx(result.ipc)
        assert parsed["cpi_stack"]

    def test_dict_contains_all_headline_metrics(self):
        result = run_simulation("camel", "ooo", max_instructions=1200)
        d = result.to_dict()
        for key in (
            "ipc", "llc_mpki", "mean_mshr_occupancy", "dram_by_source",
            "timeliness", "cycles", "instructions",
        ):
            assert key in d


class TestDeterminism:
    def test_same_run_is_bit_identical(self):
        a = run_simulation("bfs", "dvr", max_instructions=2500)
        b = run_simulation("bfs", "dvr", max_instructions=2500)
        assert a.to_dict() == b.to_dict()

    def test_workload_builds_identically(self):
        import numpy as np

        x = build_workload("kangaroo")
        y = build_workload("kangaroo")
        for seg in x.memory.segments():
            assert np.array_equal(y.memory.segment(seg.name).data, seg.data)
        assert len(x.program) == len(y.program)


class TestFigureSeries:
    def test_figure2_series_payload(self):
        result = figure2(workloads=["nas_is"], instructions=1200, rob_sizes=[128, 350])
        series = result.series["nas_is"]
        assert set(series) == {"ooo", "vr", "stall"}
        assert set(series["ooo"]) == {128, 350}
        for value in series["stall"].values():
            assert 0.0 <= value <= 1.0

    def test_figure2_unscaled_backend_variant(self):
        result = figure2(
            workloads=["nas_is"],
            instructions=1200,
            rob_sizes=[128, 350],
            scale_backend=False,
        )
        assert result.series["nas_is"]["ooo"][350] == pytest.approx(1.0)


class TestWorkloadMetaContracts:
    @pytest.mark.parametrize("name", ["camel", "nas_cg", "bfs"])
    def test_build_args_allow_fresh(self, name):
        wl = build_workload(name, size="tiny")
        again = wl.fresh()
        assert len(again.program) == len(wl.program)

    def test_indirection_levels_documented(self):
        assert build_workload("hj8", size="tiny").meta["indirection_levels"] == 8
        assert build_workload("camel", size="tiny").meta["indirection_levels"] == 2


class TestOracleDetails:
    def test_oracle_flag(self):
        from repro.techniques import make_technique

        assert make_technique("oracle").wants_ideal_memory
        assert not make_technique("dvr").wants_ideal_memory

    def test_oracle_counts_dram_bandwidth(self):
        result = run_simulation("camel", "oracle", max_instructions=2500)
        assert result.dram_by_source.get("main", 0) > 0  # not magic
