"""Fine-grained tests of DVR's Discovery Mode state machine, driven by
hand-built kernels where the expected analysis results are known."""

import numpy as np
import pytest

from repro.core import OoOCore
from repro.isa import ProgramBuilder
from repro.memory import MemoryImage
from repro.techniques import make_technique

from conftest import build_nested_loop_kernel, quick_config


def run_dvr(program, mem, max_instructions=6000, technique_name="dvr"):
    technique = make_technique(technique_name)
    core = OoOCore(
        program, mem, quick_config(max_instructions), technique=technique
    )
    result = core.run()
    return technique, result


def simple_chain_kernel(n=2048, seed=1):
    """i-loop over A (striding), one dependent load B[A[i]] (the FLR)."""
    rng = np.random.default_rng(seed)
    mem = MemoryImage()
    a = mem.allocate("A", rng.integers(0, n, n))
    bseg = mem.allocate("B", rng.integers(0, 1 << 20, n))
    b = ProgramBuilder()
    b.li("r1", a.base)
    b.li("r2", bseg.base)
    b.li("r3", 0)
    b.li("r4", n)
    b.label("loop")
    b.shli("r5", "r3", 3)
    b.add("r5", "r1", "r5")
    b.load("r6", "r5", note="stride")    # pc 6
    b.shli("r7", "r6", 3)
    b.add("r7", "r2", "r7")
    b.load("r8", "r7", note="flr")       # pc 9
    b.addi("r3", "r3", 1)
    b.cmp_lt("r9", "r3", "r4")
    b.bnz("r9", "loop")
    program = b.build()
    stride_pc = next(pc for pc, i in enumerate(program) if i.note == "stride")
    flr_pc = next(pc for pc, i in enumerate(program) if i.note == "flr")
    return program, mem, stride_pc, flr_pc


class TestDiscoveryFSM:
    def test_identifies_trigger_and_flr(self):
        program, mem, stride_pc, flr_pc = simple_chain_kernel()
        technique, _ = run_dvr(program, mem)
        assert technique.discoveries > 0
        assert technique._trigger_pc == stride_pc
        assert technique._flr == flr_pc

    def test_no_dependent_chain_means_no_spawn(self):
        """A pure striding loop (stride prefetcher territory) must not
        be worth a subthread (Section 4.1.2)."""
        mem = MemoryImage()
        a = mem.allocate("A", list(range(4096)))
        b = ProgramBuilder()
        b.li("r1", a.base)
        b.li("r3", 0)
        b.li("r4", 4096)
        b.label("loop")
        b.shli("r5", "r3", 3)
        b.add("r5", "r1", "r5")
        b.load("r6", "r5")
        b.add("r7", "r7", "r6")  # consumed, but no dependent load
        b.addi("r3", "r3", 1)
        b.cmp_lt("r9", "r3", "r4")
        b.bnz("r9", "loop")
        technique, _ = run_dvr(b.build(), mem)
        assert technique.discoveries > 0
        assert technique.spawns == 0

    def test_lane_counts_track_remaining_iterations(self):
        """Near the end of a loop, spawns must shrink below the max."""
        program, mem, _, _ = simple_chain_kernel(n=200)
        technique, _ = run_dvr(program, mem, max_instructions=3000)
        # 200-iteration loop: every spawn sees fewer than 128+64
        # remaining, and the nested threshold (64) routes short tails.
        assert technique.spawns + technique.nested_spawns >= 1
        if technique.total_lanes:
            assert technique.total_lanes <= 200 + 128  # no gross over-fetch

    def test_discovery_abort_on_runaway(self):
        """If the striding load never recurs, Discovery must abort."""
        mem = MemoryImage()
        a = mem.allocate("A", list(range(512)))
        pad = mem.allocate("PAD", 8)
        b = ProgramBuilder()
        b.li("r1", a.base)
        b.li("r3", 0)
        # A short striding warm-up loop that then falls into a long
        # non-repeating tail.
        b.label("warm")
        b.shli("r5", "r3", 3)
        b.add("r5", "r1", "r5")
        b.load("r6", "r5")
        b.shli("r7", "r6", 3)
        b.add("r7", "r1", "r7")
        b.load("r8", "r7")
        b.addi("r3", "r3", 1)
        b.cmp_lti("r9", "r3", 8)
        b.bnz("r9", "warm")
        for _ in range(700):  # longer than the discovery budget
            b.addi("r10", "r10", 1)
        technique, _ = run_dvr(b.build(), mem)
        assert technique._state == "idle"

    def test_retrigger_damping(self):
        program, mem, _, _ = simple_chain_kernel()
        technique, _ = run_dvr(program, mem)
        # Damping: far fewer discoveries than loop iterations observed.
        iterations = 6000 // 9
        assert technique.discoveries < iterations / 4

    def test_coverage_logic_directional(self):
        technique = make_technique("dvr")
        technique.lanes_max = 128
        technique._coverage[10] = 0x2000
        # Main thread far behind the covered horizon: skip.
        assert not technique._worth_retriggering(10, 0x1000, 8)
        # Main thread consumed most of the window: retrigger.
        assert technique._worth_retriggering(10, 0x1F00, 8)
        # Unknown PC always triggers.
        assert technique._worth_retriggering(11, 0x1000, 8)

    def test_zero_stride_never_retriggers_discovery_crash(self):
        technique = make_technique("dvr")
        technique.lanes_max = 128
        assert technique._worth_retriggering(10, 0x1000, 0)


class TestNestedDiscoveryDetails:
    def test_inner_addresses_span_multiple_outer_iterations(self):
        program, mem = build_nested_loop_kernel(outer=128, inner=8)
        technique, _ = run_dvr(program, mem, max_instructions=8000)
        assert technique.nested_spawns > 0
        # Lanes per spawn exceed a single 8-iteration inner loop.
        assert technique.total_lanes / max(1, technique.spawns) > 8

    def test_nested_disabled_falls_back_to_short_spawns(self):
        program, mem = build_nested_loop_kernel(outer=128, inner=8)
        technique, _ = run_dvr(
            program, mem, max_instructions=8000, technique_name="dvr-discovery"
        )
        assert technique.nested_spawns == 0
        assert technique.spawns > 0
        # Loop-bound inference caps spawns at the short inner trip count
        # (occasional 128-lane fallbacks occur when Discovery spans an
        # outer-loop boundary, exactly as the paper's footnote allows).
        assert technique.total_lanes / technique.spawns < 32

    def test_nested_beats_discovery_only_on_short_loops(self):
        program, mem = build_nested_loop_kernel(outer=256, inner=8)
        _, with_nested = run_dvr(program, mem, max_instructions=8000)
        program, mem = build_nested_loop_kernel(outer=256, inner=8)
        _, without = run_dvr(
            program, mem, max_instructions=8000, technique_name="dvr-discovery"
        )
        assert with_nested.ipc > without.ipc


class TestInnermostSwitching:
    def test_switches_to_inner_stride(self):
        program, mem = build_nested_loop_kernel(outer=64, inner=32)
        technique, _ = run_dvr(program, mem, max_instructions=8000)
        assert technique.innermost_switches >= 1
        # The final trigger is the *inner* striding load: the IDX[j]
        # access, which is the third load in the kernel.
        load_pcs = [pc for pc, instr in enumerate(program) if instr.is_load]
        assert technique._trigger_pc == load_pcs[2]
