"""Behavioural tests for the technique implementations: classic
runahead, PRE, IMP, VR, DVR (and its ablations), and the Oracle."""

import numpy as np
import pytest

from repro.config import CoreConfig
from repro.core import OoOCore
from repro.prefetch import StridePrefetcher
from repro.techniques import make_technique, technique_names

from conftest import (
    build_indirect_kernel,
    build_nested_loop_kernel,
    quick_config,
)

SMALL_ROB = CoreConfig().with_scaled_backend(128)


def run(kernel_builder, technique, config=None, **kernel_kwargs):
    program, mem = kernel_builder(**kernel_kwargs)
    core = OoOCore(
        program, mem, config or quick_config(), technique=make_technique(technique)
    )
    return core.run()


class TestRegistry:
    def test_all_names_construct(self):
        for name in technique_names():
            technique = make_technique(name)
            assert technique.name in (name, name.replace("-", "_")) or technique.name

    def test_unknown_name_raises(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            make_technique("warp-drive")

    def test_fresh_instance_per_call(self):
        assert make_technique("dvr") is not make_technique("dvr")

    def test_ablation_pins(self):
        # Ablations are declarative config pins, not constructor
        # arguments; the flags themselves are read from the attached
        # core's (pin-resolved) config.
        offload = make_technique("dvr-offload")
        assert offload.config_pins == {
            "discovery_enabled": False,
            "nested_enabled": False,
        }
        noreconv = make_technique("dvr-noreconv")
        assert noreconv.config_pins == {"reconvergence_enabled": False}
        assert make_technique("dvr").config_pins == {}

    def test_ablation_flags_resolve_from_config(self):
        program, mem = build_indirect_kernel(levels=1)
        technique = make_technique("dvr-offload")
        OoOCore(program, mem, quick_config(), technique=technique)
        assert technique.discovery_enabled is False
        assert technique.nested_enabled is False
        assert technique.reconvergence_enabled is True

    def test_explicit_override_conflicting_with_pin_raises(self):
        from repro.errors import ConfigError
        from repro.experiments import RunSpec

        # A field left at its default is pinned silently; an explicit
        # override contradicting the pin is a hard error, even when the
        # overridden value equals the dataclass default.
        RunSpec("camel", technique="dvr-offload").resolved()
        with pytest.raises(ConfigError):
            RunSpec(
                "camel",
                technique="dvr-offload",
                overrides=(("runahead.discovery_enabled", True),),
            ).resolved()
        # Agreeing with the pin is never a conflict.
        RunSpec(
            "camel",
            technique="dvr-offload",
            overrides=(("runahead.discovery_enabled", False),),
        ).resolved()


class TestStridePrefetcherUnit:
    def test_observe_confidence(self):
        pf = StridePrefetcher(streams=4, degree=2)
        assert not pf.observe(1, 0x1000)
        assert not pf.observe(1, 0x1040)
        assert not pf.observe(1, 0x1080)
        assert pf.observe(1, 0x10C0)
        assert pf.stride_of(1) == 0x40

    def test_table_eviction(self):
        pf = StridePrefetcher(streams=2)
        pf.observe(1, 0)
        pf.observe(2, 0)
        pf.observe(3, 0)
        assert pf.stride_of(1) == 0  # evicted

    def test_issues_prefetches_into_hierarchy(self):
        from repro.config import MemoryConfig
        from repro.memory import MemoryHierarchy

        h = MemoryHierarchy(MemoryConfig.scaled())
        pf = StridePrefetcher(streams=4, degree=2)
        for k in range(6):
            pf.on_demand_load(7, 0x10000 + 64 * k, cycle=k * 10, hierarchy=h)
        assert pf.issued > 0
        assert h.stats.prefetches_by_source.get("prefetcher", 0) == pf.issued


class TestClassicAndPre:
    def test_classic_triggers_and_prefetches(self):
        result = run(build_indirect_kernel, "runahead", config=quick_config().with_core(SMALL_ROB), levels=2)
        stats = result.technique_stats
        assert stats["triggers"] > 0
        assert stats["runahead_prefetches"] > 0

    def test_classic_flush_penalty_blocks_fetch(self):
        program, mem = build_indirect_kernel(levels=2)
        technique = make_technique("runahead")
        core = OoOCore(program, mem, quick_config().with_core(SMALL_ROB), technique=technique)
        core.run()
        assert technique.fetch_blocked_until > 0

    def test_pre_no_flush(self):
        program, mem = build_indirect_kernel(levels=2)
        technique = make_technique("pre")
        core = OoOCore(program, mem, quick_config().with_core(SMALL_ROB), technique=technique)
        core.run()
        assert technique.fetch_blocked_until == 0

    def test_pre_helps_on_indirect(self):
        cfg = quick_config().with_core(SMALL_ROB)
        base = run(build_indirect_kernel, "ooo", config=cfg, levels=1)
        pre = run(build_indirect_kernel, "pre", config=cfg, levels=1)
        assert pre.ipc > base.ipc

    def test_pre_filters_instructions(self):
        program, mem = build_indirect_kernel(levels=1)
        # Insert float noise that is outside the address slice? The
        # shared kernel is all-slice, so just assert the counter exists.
        result = run(build_indirect_kernel, "pre", config=quick_config().with_core(SMALL_ROB), levels=1)
        assert "filtered_instructions" in result.technique_stats


class TestIMP:
    def test_learns_linear_pattern(self):
        result = run(build_indirect_kernel, "imp", levels=1)
        stats = result.technique_stats
        assert stats["imp_patterns"] >= 1
        assert stats["imp_prefetches"] > 0

    def test_helps_on_one_level_indirection(self):
        base = run(build_indirect_kernel, "ooo", levels=1)
        imp = run(build_indirect_kernel, "imp", levels=1)
        assert imp.ipc > 1.1 * base.ipc

    def test_cannot_follow_hash_chains(self):
        """camel-style hashing breaks IMP's linear correlation."""
        from repro.workloads import build_workload

        wl = build_workload("camel", size="tiny")
        core = OoOCore(wl.program, wl.memory, quick_config(), technique=make_technique("imp"))
        result = core.run()
        assert result.technique_stats["imp_patterns"] == 0


class TestVectorRunahead:
    def test_vector_episodes_on_small_rob(self):
        cfg = quick_config().with_core(SMALL_ROB)
        result = run(build_indirect_kernel, "vr", config=cfg, levels=2)
        stats = result.technique_stats
        assert stats["vector_episodes"] > 0
        assert stats["vector_prefetches"] > 0

    def test_delayed_termination_blocks_commit(self):
        cfg = quick_config().with_core(SMALL_ROB)
        result = run(build_indirect_kernel, "vr", config=cfg, levels=2)
        assert result.commit_block_cycles > 0

    def test_coverage_skip(self):
        cfg = quick_config().with_core(SMALL_ROB)
        result = run(build_indirect_kernel, "vr", config=cfg, levels=2)
        assert result.technique_stats["skipped_covered"] >= 0

    def test_vr_beats_baseline_on_small_rob(self):
        cfg = quick_config(max_instructions=8000).with_core(SMALL_ROB)
        base = run(build_indirect_kernel, "ooo", config=cfg, levels=2)
        vr = run(build_indirect_kernel, "vr", config=cfg, levels=2)
        assert vr.ipc > base.ipc


class TestDVR:
    def test_discovery_and_spawn(self):
        result = run(build_indirect_kernel, "dvr", levels=1)
        stats = result.technique_stats
        assert stats["discoveries"] > 0
        assert stats["spawns"] > 0
        assert stats["subthread_prefetches"] > 0

    def test_decoupled_never_blocks_commit(self):
        result = run(build_indirect_kernel, "dvr", levels=2)
        assert result.commit_block_cycles == 0

    def test_helps_without_full_rob_stalls(self):
        """DVR's defining feature: speedup on a huge-ROB core where
        stall-triggered techniques barely fire."""
        big = CoreConfig().with_scaled_backend(512)
        cfg = quick_config(max_instructions=8000).with_core(big)
        base = run(build_indirect_kernel, "ooo", config=cfg, levels=2)
        dvr = run(build_indirect_kernel, "dvr", config=cfg, levels=2)
        assert dvr.ipc > 1.15 * base.ipc

    def test_loop_bound_caps_lanes(self):
        """A loop with fewer remaining iterations than 128 must not
        over-fetch: lanes per spawn stay below the maximum."""
        program, mem = build_indirect_kernel(n=512, levels=1)
        technique = make_technique("dvr")
        core = OoOCore(program, mem, quick_config(max_instructions=30000), technique=technique)
        core.run()
        # 512-iteration loop: the final spawns see < 128 remaining.
        assert technique.spawns >= 1
        mean_lanes = technique.total_lanes / technique.spawns
        assert mean_lanes <= 128

    def test_nested_mode_on_short_inner_loops(self):
        result = run(build_nested_loop_kernel, "dvr", inner=8, outer=256)
        stats = result.technique_stats
        assert stats["nested_spawns"] > 0

    def test_nested_gathers_many_lanes(self):
        program, mem = build_nested_loop_kernel(inner=8, outer=256)
        technique = make_technique("dvr")
        core = OoOCore(program, mem, quick_config(), technique=technique)
        core.run()
        nested_runs = technique.nested_spawns
        if nested_runs:
            # Nested mode must aggregate more lanes than one 8-long
            # inner loop could provide.
            assert technique.total_lanes / technique.spawns > 8

    def test_offload_ignores_loop_bounds(self):
        program, mem = build_indirect_kernel(n=512, levels=1)
        technique = make_technique("dvr-offload")
        core = OoOCore(program, mem, quick_config(), technique=technique)
        core.run()
        assert technique.discoveries == 0
        if technique.spawns:
            assert technique.total_lanes / technique.spawns == 128

    def test_innermost_switching(self):
        result = run(build_nested_loop_kernel, "dvr", inner=16, outer=128)
        assert result.technique_stats["innermost_switches"] >= 1

    def test_dvr_beats_vr_on_default_rob(self):
        base_cfg = quick_config(max_instructions=8000)
        vr = run(build_indirect_kernel, "vr", config=base_cfg, levels=2)
        dvr = run(build_indirect_kernel, "dvr", config=base_cfg, levels=2)
        assert dvr.ipc > vr.ipc


class TestOracle:
    def test_all_demand_loads_hit_l1(self):
        result = run(build_indirect_kernel, "oracle", levels=2)
        assert set(result.demand_level_counts) == {"L1"}

    def test_oracle_is_fastest(self):
        results = {
            tech: run(build_indirect_kernel, tech, levels=1)
            for tech in ("ooo", "dvr", "oracle")
        }
        assert results["oracle"].ipc >= results["dvr"].ipc >= results["ooo"].ipc
