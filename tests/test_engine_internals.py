"""Deeper unit tests of vector-engine internals (VRAT semantics, WAW
overwrites, reconvergence overflow, negative strides) and of classic
runahead's INV behaviour."""

import numpy as np
import pytest

from repro.config import MemoryConfig
from repro.isa import ProgramBuilder
from repro.memory import MemoryHierarchy, MemoryImage
from repro.runahead.reconvergence import ReconvergenceStack
from repro.runahead.vector_engine import VectorChainRun


def engine_for(program, mem, regs, lanes, **kwargs):
    hierarchy = MemoryHierarchy(MemoryConfig.scaled())
    run = VectorChainRun(
        program,
        mem,
        hierarchy,
        regs,
        start_pc=0,
        lane_addresses=lanes,
        start_cycle=0,
        vector_width=8,
        timeout=100,
        **kwargs,
    )
    return run, hierarchy


class TestVRATSemantics:
    def test_scalar_promoted_on_vector_write(self):
        """A register written by a tainted op becomes a vector register
        (the VRAT's fresh-physical-register case)."""
        mem = MemoryImage()
        a = mem.allocate("A", list(range(64)))
        b = ProgramBuilder()
        b.load("r4", "r3")      # trigger
        b.addi("r5", "r4", 1)   # r5 becomes vector
        b.halt()
        regs = [0] * 32
        regs[3] = a.base
        run, _ = engine_for(b.build(), mem, regs, [a.base, a.base + 8], end_pc=None)
        run.run_to_completion()
        assert run._kind[5] == 1  # vector
        assert run._vval[5][0] == mem.read_word(a.base) + 1
        assert run._vval[5][1] == mem.read_word(a.base + 8) + 1

    def test_waw_scalar_overwrite_demotes(self):
        """A clean scalar write to a vectorised register demotes it back
        to scalar (the paper's WAW renaming case)."""
        mem = MemoryImage()
        a = mem.allocate("A", list(range(64)))
        b = ProgramBuilder()
        b.load("r4", "r3")      # r4 vector
        b.li("r4", 7)           # overwritten by a scalar immediate
        b.addi("r5", "r4", 1)   # so r5 is scalar too
        b.halt()
        regs = [0] * 32
        regs[3] = a.base
        run, _ = engine_for(b.build(), mem, regs, [a.base, a.base + 8], end_pc=None)
        run.run_to_completion()
        assert run._kind[4] == 0  # scalar again
        assert run._sval[5] == 8

    def test_untainted_ops_execute_once(self):
        mem = MemoryImage()
        a = mem.allocate("A", list(range(64)))
        b = ProgramBuilder()
        b.load("r4", "r3")
        b.addi("r9", "r9", 1)   # scalar: one copy regardless of lanes
        b.halt()
        regs = [0] * 32
        regs[3] = a.base
        lanes = [a.base + 8 * k for k in range(16)]
        run, _ = engine_for(b.build(), mem, regs, lanes, end_pc=None)
        run.run_to_completion()
        # 16 lanes / 8-wide = 2 copies for the load, 1 for the addi.
        assert run.copies_issued == 3

    def test_lane_values_correct_through_two_levels(self):
        rng = np.random.default_rng(4)
        mem = MemoryImage()
        a = mem.allocate("A", rng.integers(0, 64, 64))
        c = mem.allocate("C", rng.integers(0, 1 << 20, 64))
        b = ProgramBuilder()
        b.load("r4", "r3")
        b.shli("r5", "r4", 3)
        b.add("r5", "r6", "r5")
        b.load("r7", "r5")
        b.halt()
        regs = [0] * 32
        regs[3] = a.base
        regs[6] = c.base
        lanes = [a.base + 8 * k for k in range(8)]
        run, _ = engine_for(b.build(), mem, regs, lanes, end_pc=3)
        run.run_to_completion()
        for lane in range(8):
            idx = mem.read_word(lanes[lane])
            assert run._vval[7][lane] == mem.read_word(c.base + 8 * idx)


class TestReconvergenceInEngine:
    def _divergent_program(self, levels_of_branching):
        """Nested data-dependent branches to overflow the stack."""
        b = ProgramBuilder()
        b.load("r4", "r3")  # trigger: random bits per lane
        reg = 4
        for level in range(levels_of_branching):
            b.shri(f"r{5 + level}", f"r{reg}", level)
            b.andi(f"r{5 + level}", f"r{5 + level}", 1)
            b.bnz(f"r{5 + level}", f"skip{level}")
            b.addi("r20", "r20", 1)
            b.label(f"skip{level}")
        b.halt()
        return b.build()

    def test_deep_divergence_overflows_bounded_stack(self):
        rng = np.random.default_rng(9)
        mem = MemoryImage()
        a = mem.allocate("A", rng.integers(0, 1 << 12, 128))
        regs = [0] * 32
        regs[3] = a.base
        program = self._divergent_program(12)
        stack = ReconvergenceStack(2)
        lanes = [a.base + 8 * k for k in range(32)]
        run, _ = engine_for(
            program, mem, regs, lanes, end_pc=None, reconvergence=stack
        )
        run.run_to_completion()
        assert stack.overflows > 0
        assert run.finished

    def test_divergence_without_stack_keeps_first_lane(self):
        rng = np.random.default_rng(9)
        mem = MemoryImage()
        a = mem.allocate("A", rng.integers(0, 2, 128))
        regs = [0] * 32
        regs[3] = a.base
        b = ProgramBuilder()
        b.load("r4", "r3")
        b.bnz("r4", "t")
        b.addi("r5", "r5", 1)
        b.label("t")
        b.halt()
        lanes = [a.base + 8 * k for k in range(16)]
        run, _ = engine_for(b.build(), mem, regs, lanes, end_pc=None)
        run.run_to_completion()
        flags = [mem.read_word(addr) for addr in lanes]
        minority = sum(1 for f in flags if f != flags[0])
        assert run.lanes_invalidated == minority


class TestSecondaryStrideEdgeCases:
    def test_negative_secondary_stride(self):
        mem = MemoryImage()
        a = mem.allocate("A", list(range(128)))
        w = mem.allocate("W", list(range(128)))
        b = ProgramBuilder()
        b.load("r4", "r3")
        b.load("r5", "r10")  # W walked backwards
        b.halt()
        regs = [0] * 32
        regs[3] = a.base
        regs[10] = w.base + 8 * 100
        lanes = [a.base + 8 * k for k in range(4)]
        run, hierarchy = engine_for(
            b.build(), mem, regs, lanes, end_pc=None, stride_map={1: -8}
        )
        run.run_to_completion()
        line = hierarchy.line_of(w.base + 8 * 96)  # 100 - 4
        assert hierarchy.l1.contains(line, 1 << 60)

    def test_secondary_stride_with_dead_base(self):
        """A stride-mapped load whose base register is invalid must not
        crash — lanes go dead instead."""
        mem = MemoryImage()
        a = mem.allocate("A", list(range(64)))
        b = ProgramBuilder()
        b.load("r4", "r3")
        b.load("r5", "r11")  # r11 never initialised to a mapped address
        b.halt()
        regs = [None] * 32
        regs[3] = a.base
        lanes = [a.base + 8 * k for k in range(4)]
        run, _ = engine_for(b.build(), mem, regs, lanes, end_pc=None, stride_map={1: 8})
        run.run_to_completion()
        assert run.finished


class TestClassicRunaheadINV:
    def test_inv_registers_block_dependent_prefetch(self):
        """PRE/classic cannot prefetch past a value that has not
        returned: seed an INV base register and check no prefetch."""
        from repro.runahead.interpreter import SpeculativeInterpreter

        mem = MemoryImage()
        a = mem.allocate("A", list(range(64)))
        b = ProgramBuilder()
        b.load("r5", "r4")   # r4 is INV -> no address
        b.load("r6", "r5")   # transitively INV
        b.halt()
        calls = []

        def cb(pc, addr):
            calls.append(pc)
            return 1, True

        interp = SpeculativeInterpreter(
            b.build(), mem, 0, [0] * 32, invalid_regs=[4]
        )
        while interp.step(cb) is not None:
            pass
        assert calls == []  # neither load had a valid address
