"""Golden-trace regression suite.

Each (technique, workload) combination is run for a short region with
event tracing on; the whole-stream digest must match the committed
reference in ``tests/golden/traces.json``. The digest folds in every
emitted event (fetch/issue/complete/retire plus runahead enter/exit and
vector dispatches), so *any* behavioural drift in the pipeline or a
runahead engine changes it.

When a change is intentional, regenerate the references with::

    PYTHONPATH=src python -m pytest tests/test_golden_traces.py --update-goldens
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.runner import run_simulation

GOLDEN_PATH = Path(__file__).parent / "golden" / "traces.json"

INSTRUCTIONS = 1_500
TECHNIQUES = ("ooo", "vr", "dvr", "pre")
WORKLOADS = ("camel", "nas_is")
COMBOS = [(t, w) for t in TECHNIQUES for w in WORKLOADS]


def _key(technique: str, workload: str) -> str:
    return f"{workload}/{technique}@{INSTRUCTIONS}"


def _load_goldens() -> dict:
    if not GOLDEN_PATH.exists():
        return {}
    return json.loads(GOLDEN_PATH.read_text())


def _run(technique: str, workload: str):
    return run_simulation(
        workload, technique, max_instructions=INSTRUCTIONS, trace=True
    )


def test_goldens_file_is_complete():
    goldens = _load_goldens()
    missing = [
        _key(t, w) for t, w in COMBOS if _key(t, w) not in goldens
    ]
    assert not missing, (
        f"missing golden digests {missing}; run with --update-goldens"
    )


@pytest.mark.parametrize("technique,workload", COMBOS)
def test_trace_matches_golden(technique, workload, update_goldens):
    result = _run(technique, workload)
    assert result.trace_digest is not None
    assert result.trace_events > 0
    key = _key(technique, workload)
    goldens = _load_goldens()
    entry = {
        "digest": result.trace_digest,
        "events": result.trace_events,
        "instructions": result.instructions,
        "cycles": result.cycles,
    }
    if update_goldens:
        goldens[key] = entry
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(goldens, indent=2, sort_keys=True) + "\n")
        return
    assert key in goldens, f"no golden for {key}; run with --update-goldens"
    assert entry == goldens[key], (
        f"{key}: trace drifted from golden.\n"
        f"  expected {goldens[key]}\n"
        f"  got      {entry}\n"
        "If the change is intentional, regenerate with --update-goldens."
    )


def test_trace_digest_is_deterministic():
    first = _run("vr", "camel")
    second = _run("vr", "camel")
    assert first.trace_digest == second.trace_digest
    assert first.trace_events == second.trace_events


def test_digest_independent_of_ring_capacity():
    full = run_simulation(
        "camel", "vr", max_instructions=INSTRUCTIONS, trace=True
    )
    tiny = run_simulation(
        "camel", "vr", max_instructions=INSTRUCTIONS, trace=True, trace_capacity=64
    )
    assert full.trace_digest == tiny.trace_digest
    assert full.trace_events == tiny.trace_events
