"""Parallel batch runner tests."""

import pytest

from repro.experiments import run_batch, speedup_matrix


def _specs():
    return [
        {"workload": w, "technique": t, "max_instructions": 1200}
        for w in ("camel", "nas_is")
        for t in ("ooo", "dvr")
    ]


class TestRunBatch:
    def test_serial_matches_individual_runs(self):
        from repro.experiments import run_simulation

        results = run_batch(_specs())
        direct = run_simulation("camel", "ooo", max_instructions=1200)
        assert results[0].to_dict() == direct.to_dict()

    def test_parallel_is_bit_identical_to_serial(self):
        serial = run_batch(_specs())
        parallel = run_batch(_specs(), jobs=2)
        for a, b in zip(serial, parallel):
            assert a.to_dict() == b.to_dict()

    def test_result_order_follows_spec_order(self):
        results = run_batch(_specs(), jobs=2)
        assert [r.workload for r in results] == ["camel", "camel", "nas_is", "nas_is"]
        assert [r.technique for r in results] == ["ooo", "dvr", "ooo", "dvr"]

    def test_single_spec_short_circuits(self):
        results = run_batch([_specs()[0]], jobs=8)
        assert len(results) == 1

    def test_empty_batch(self):
        assert run_batch([]) == []


class TestSpeedupMatrix:
    def test_matrix_shape_and_values(self):
        matrix = speedup_matrix(
            ["nas_is"], ["imp", "dvr"], instructions=1200, jobs=2
        )
        assert set(matrix) == {"nas_is"}
        assert set(matrix["nas_is"]) == {"imp", "dvr"}
        for value in matrix["nas_is"].values():
            assert value > 0

    def test_matrix_serial_equals_parallel(self):
        serial = speedup_matrix(["camel"], ["dvr"], instructions=1200)
        parallel = speedup_matrix(["camel"], ["dvr"], instructions=1200, jobs=2)
        assert serial["camel"]["dvr"] == pytest.approx(parallel["camel"]["dvr"])
