"""Configuration object tests."""

import pytest

from repro.config import (
    BranchPredictorConfig,
    CacheConfig,
    CoreConfig,
    MemoryConfig,
    RunaheadConfig,
    SimConfig,
)
from repro.errors import ConfigError


class TestCacheConfig:
    def test_num_sets(self):
        cfg = CacheConfig(32 * 1024, 8, latency=4)
        assert cfg.num_sets == 64

    def test_rejects_zero_size(self):
        with pytest.raises(ConfigError):
            CacheConfig(0, 8, latency=4)

    def test_rejects_indivisible_geometry(self):
        with pytest.raises(ConfigError):
            CacheConfig(1000, 3, latency=4)


class TestCoreConfig:
    def test_paper_defaults_match_table1(self):
        cfg = CoreConfig()
        assert cfg.width == 5
        assert cfg.rob_size == 350
        assert cfg.iq_size == 128
        assert cfg.lq_size == 128
        assert cfg.sq_size == 72
        assert cfg.frontend_stages == 15
        assert cfg.int_div_latency == 18
        assert cfg.fp_mul_latency == 5

    def test_with_rob_keeps_queues(self):
        cfg = CoreConfig().with_rob(512)
        assert cfg.rob_size == 512
        assert cfg.iq_size == 128

    def test_with_scaled_backend(self):
        cfg = CoreConfig().with_scaled_backend(700)
        assert cfg.rob_size == 700
        assert cfg.iq_size == 256
        assert cfg.lq_size == 256
        assert cfg.sq_size == 144

    def test_rejects_bad_width(self):
        with pytest.raises(ConfigError):
            CoreConfig(width=0)

    def test_rejects_bad_queue(self):
        with pytest.raises(ConfigError):
            CoreConfig(iq_size=0)


class TestMemoryConfig:
    def test_paper_sizes(self):
        cfg = MemoryConfig.paper()
        assert cfg.l1d.size_bytes == 32 * 1024
        assert cfg.l2.size_bytes == 256 * 1024
        assert cfg.l3.size_bytes == 8 * 1024 * 1024
        assert cfg.l1d_mshrs == 24
        assert cfg.dram_latency == 200

    def test_scaled_llc_smaller(self):
        assert MemoryConfig.scaled().l3.size_bytes < MemoryConfig.paper().l3.size_bytes

    def test_scaled_keeps_l1(self):
        assert MemoryConfig.scaled().l1d.size_bytes == 32 * 1024


class TestSimConfig:
    def test_defaults(self):
        cfg = SimConfig()
        assert cfg.stride_prefetcher_enabled
        assert cfg.runahead.dvr_lanes == 128
        assert cfg.runahead.vector_width == 8
        assert cfg.runahead.nested_threshold == 64
        assert cfg.runahead.instruction_timeout == 200

    def test_with_helpers_are_pure(self):
        cfg = SimConfig()
        other = cfg.with_max_instructions(5)
        assert cfg.max_instructions != 5
        assert other.max_instructions == 5
        assert cfg.with_core(CoreConfig(width=4)).core.width == 4
        assert cfg.with_runahead(RunaheadConfig(dvr_lanes=32)).runahead.dvr_lanes == 32

    def test_paper_and_scaled_constructors(self):
        assert SimConfig.paper().memory.l3.size_bytes == 8 * 1024 * 1024
        assert SimConfig.scaled().memory.l3.size_bytes == 512 * 1024

    def test_branch_config_defaults(self):
        cfg = BranchPredictorConfig()
        assert cfg.num_tagged_tables == 4
        assert cfg.min_history < cfg.max_history
