"""Deeper internals: DVR's continuation chaining and nested-lane
arithmetic, VR's scan behaviour, hierarchy corner cases, and the SWPF
pass applied systematically to every paper kernel."""

import numpy as np
import pytest

from repro.config import MemoryConfig
from repro.core import FunctionalCore, OoOCore
from repro.isa import ProgramBuilder, insert_software_prefetches
from repro.memory import MemoryHierarchy, MemoryImage
from repro.techniques import make_technique
from repro.workloads import WORKLOAD_NAMES, build_workload

from conftest import build_nested_loop_kernel, quick_config


class TestDVRInternals:
    def test_lane_iterations_arithmetic(self):
        from repro.runahead.dvr import DecoupledVectorRunahead

        class Compare:
            rs1, rs2, uses_imm, imm = 1, 2, False, 0

        regs = [0] * 32
        regs[1] = 10  # induction current
        regs[2] = 30  # bound
        assert DecoupledVectorRunahead._lane_iterations(regs, 1, 1, Compare()) == 20
        assert DecoupledVectorRunahead._lane_iterations(regs, 1, 2, Compare()) == 10
        # Decrementing loop.
        regs[1], regs[2] = 30, 10
        assert DecoupledVectorRunahead._lane_iterations(regs, 1, -1, Compare()) == 20

    def test_lane_iterations_immediate_compare(self):
        from repro.runahead.dvr import DecoupledVectorRunahead

        class Compare:
            rs1, rs2, uses_imm, imm = 1, None, True, 64

        regs = [0] * 32
        regs[1] = 60
        assert DecoupledVectorRunahead._lane_iterations(regs, 1, 1, Compare()) == 4

    def test_lane_iterations_defaults_on_garbage(self):
        from repro.runahead.dvr import DecoupledVectorRunahead

        class Compare:
            rs1, rs2, uses_imm, imm = 1, 2, False, 0

        regs = [None] * 32
        assert DecoupledVectorRunahead._lane_iterations(regs, 1, 1, Compare()) == 8
        assert DecoupledVectorRunahead._lane_iterations(regs, None, 1, None) == 8

    def test_lane_iterations_capped(self):
        from repro.runahead.dvr import DecoupledVectorRunahead

        class Compare:
            rs1, rs2, uses_imm, imm = 1, 2, False, 0

        regs = [0] * 32
        regs[1], regs[2] = 0, 1 << 20
        assert DecoupledVectorRunahead._lane_iterations(regs, 1, 1, Compare()) == 128

    def test_nested_continuation_chains_two_runs(self):
        """NDM phase B must hand off to the inner chain run (the
        continuation), visible as two sequential active runs."""
        program, mem = build_nested_loop_kernel(outer=128, inner=8)
        technique = make_technique("dvr")
        core = OoOCore(program, mem, quick_config(6000), technique=technique)
        core.run()
        assert technique.nested_spawns > 0
        # After finalize, nothing is left pending.
        assert technique._active is None
        assert technique._continuation is None

    def test_finalize_drains_active_run(self):
        program, mem = build_nested_loop_kernel(outer=64, inner=8)
        technique = make_technique("dvr")
        core = OoOCore(program, mem, quick_config(1500), technique=technique)
        core.run()  # calls finalize internally
        assert technique._active is None

    def test_collect_inner_addresses_cap(self):
        """Nested collection stops at 128 lanes no matter how many
        outer iterations were captured."""
        program, mem = build_nested_loop_kernel(outer=512, inner=32)
        technique = make_technique("dvr")
        core = OoOCore(program, mem, quick_config(8000), technique=technique)
        core.run()
        if technique.nested_spawns:
            assert technique.total_lanes / technique.spawns <= 128 + 16


class TestVRInternals:
    def test_no_trigger_without_confident_stride(self):
        """Pure pointer chasing (no striding load) leaves VR scalar."""
        rng = np.random.default_rng(3)
        mem = MemoryImage()
        n = 2048
        # A permutation cycle: p = NEXT[p].
        perm = rng.permutation(n).astype(np.int64)
        nxt = mem.allocate("NEXT", perm * 8)
        base_fix = nxt.base
        nxt.data += base_fix  # absolute pointers
        b = ProgramBuilder()
        b.li("r1", nxt.base)
        b.li("r2", 4000)
        b.label("loop")
        b.load("r1", "r1")          # p = *p   (no stride)
        b.addi("r2", "r2", -1)
        b.bnz("r2", "loop")
        technique = make_technique("vr")
        core = OoOCore(b.build(), mem, quick_config(4000), technique=technique)
        core.run()
        assert technique.vector_episodes == 0

    def test_commit_block_monotone(self):
        program, mem = build_nested_loop_kernel(outer=256, inner=8)
        technique = make_technique("vr")
        core = OoOCore(program, mem, quick_config(4000), technique=technique)
        result = core.run()
        assert technique.commit_blocked_until <= result.cycles + 10_000


class TestHierarchyCorners:
    def test_llc_only_fill_evicts_within_l3(self):
        h = MemoryHierarchy(MemoryConfig.scaled())
        sets = h.l3.num_sets
        base = 0x100000
        for k in range(h.l3.assoc + 2):
            h.access(base + k * sets * 64, 0, source="runahead", prefetch=True, fill_to="l3")
        total = sum(len(bucket) for bucket in h.l3._sets.values())
        assert total <= h.l3.num_sets * h.l3.assoc

    def test_writes_count_dram_traffic(self):
        h = MemoryHierarchy(MemoryConfig.scaled())
        h.access(0x10000, 0, source="main", write=True)
        assert h.dram_accesses("main") == 1

    def test_prefetch_to_cached_line_is_cheap(self):
        h = MemoryHierarchy(MemoryConfig.scaled())
        first = h.access(0x10000, 0)
        h.access(0x10000, first.ready + 1, source="runahead", prefetch=True)
        assert h.stats.prefetch_already_cached == 1
        assert h.dram_accesses("runahead") == 0


class TestSwpfAcrossSuite:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_transform_is_safe_on_every_kernel(self, name):
        """Whether or not the pass applies, it must preserve semantics."""
        wl = build_workload(name, size="tiny")
        transformed = insert_software_prefetches(wl.program)
        ref = build_workload(name, size="tiny")
        FunctionalCore(ref.program, ref.memory).run_to_completion(5_000_000)
        FunctionalCore(transformed, wl.memory).run_to_completion(5_000_000)
        for seg in ref.memory.segments():
            assert np.array_equal(wl.memory.segment(seg.name).data, seg.data)

    def test_applies_to_plain_indirect_kernels(self):
        applied = []
        for name in WORKLOAD_NAMES:
            wl = build_workload(name, size="tiny")
            if len(insert_software_prefetches(wl.program)) > len(wl.program):
                applied.append(name)
        # The linear-indirection kernels are transformable...
        for name in ("nas_is", "kangaroo", "random_access", "bfs", "cc"):
            assert name in applied
        # ...the hash-chain ones are not (hash breaks the idiom).
        assert "camel" not in applied
        assert "hj2" not in applied
