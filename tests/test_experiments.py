"""Experiment harness tests: runner, report formatting, figure/table
generators (at tiny instruction budgets), and the CLI."""

import pytest

from repro.cli import main
from repro.experiments import (
    ExperimentResult,
    figure2,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    format_table,
    harmonic_mean,
    run_simulation,
    table1_rows,
    table2_rows,
)
from repro.experiments.report import geometric_mean

TINY = 1_500


class TestReportHelpers:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [[1, 2.5], [10, 0.125]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.50" in text and "0.12" in text

    def test_harmonic_mean(self):
        assert harmonic_mean([1, 1, 1]) == pytest.approx(1.0)
        assert harmonic_mean([2, 2]) == pytest.approx(2.0)
        assert harmonic_mean([1, 3]) == pytest.approx(1.5)
        assert harmonic_mean([]) == 0.0
        assert harmonic_mean([0.0, 2.0]) == pytest.approx(2.0)

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0

    def test_experiment_result_accessors(self):
        result = ExperimentResult(
            "x", "t", ["k", "v"], [["a", 1], ["b", 2]], notes=["n"]
        )
        assert result.column("v") == [1, 2]
        assert result.row_for("b") == ["b", 2]
        with pytest.raises(KeyError):
            result.row_for("c")
        assert "note: n" in result.to_text()


class TestRunner:
    def test_run_simulation_basic(self):
        result = run_simulation("camel", "ooo", max_instructions=TINY, size="tiny")
        assert result.instructions == TINY
        assert result.technique == "ooo"

    def test_run_simulation_with_input(self):
        result = run_simulation(
            "bfs", "ooo", max_instructions=TINY, input_name="UR", size="tiny"
        )
        assert result.workload == "bfs_UR"

    def test_hpc_db_ignores_input(self):
        result = run_simulation(
            "camel", "ooo", max_instructions=TINY, input_name="KR", size="tiny"
        )
        assert result.instructions == TINY


class TestTables:
    def test_table1_reflects_config(self):
        result = table1_rows()
        assert result.row_for("ROB size")[1] == 350
        assert "TAGE" in result.row_for("Branch predictor")[1]

    def test_table2_structure(self):
        result = table2_rows(instructions=800, inputs=["UR"], kernels=["bfs", "cc"])
        assert result.headers == ["input", "nodes", "edges", "llc_mpki"]
        row = result.row_for("UR")
        assert row[1] > 0 and row[2] > 0 and row[3] > 0


class TestFigures:
    def test_figure2_rows_and_series(self):
        result = figure2(workloads=["camel"], instructions=TINY, rob_sizes=[128, 350])
        assert len(result.rows) == 2
        assert result.series["camel"]["ooo"][350] == pytest.approx(1.0)
        for row in result.rows:
            assert 0 <= row[4] <= 100  # stall percentage

    def test_figure7_includes_hmean(self):
        result = figure7(
            workloads=["camel"], instructions=TINY, techniques=("pre", "dvr")
        )
        assert result.headers == ["workload", "ooo", "pre", "dvr"]
        assert result.rows[-1][0] == "h-mean"
        assert result.row_for("camel")[1] == pytest.approx(1.0)

    def test_figure7_with_inputs(self):
        result = figure7(
            workloads=["bfs"],
            instructions=TINY,
            inputs=["KR", "UR"],
            techniques=("dvr",),
        )
        labels = [row[0] for row in result.rows]
        assert "bfs_KR" in labels and "bfs_UR" in labels

    def test_figure8_configs(self):
        result = figure8(workloads=["camel"], instructions=TINY)
        assert result.headers == ["workload", "vr", "offload", "+discovery", "full_dvr"]
        assert len(result.rows) == 2  # camel + h-mean

    def test_figure9_occupancy(self):
        result = figure9(workloads=["camel"], instructions=TINY)
        row = result.row_for("camel")
        for value in row[1:]:
            assert 0 <= value <= 24

    def test_figure10_traffic_split(self):
        result = figure10(workloads=["camel"], instructions=TINY)
        assert len(result.rows) == 2  # vr + dvr
        for row in result.rows:
            assert row[3] == pytest.approx(row[1] + row[2])

    def test_figure11_fractions(self):
        result = figure11(workloads=["camel"], instructions=TINY)
        row = result.row_for("camel")
        assert sum(row[1:5]) == pytest.approx(1.0, abs=1e-6) or sum(row[1:5]) == 0.0

    def test_figure12_series(self):
        result = figure12(workloads=["camel"], instructions=TINY, rob_sizes=[128, 350])
        assert set(result.series["camel"]) == {"ooo", "dvr"}


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "camel" in out and "dvr" in out and "figure7" in out

    def test_run(self, capsys):
        assert main(["run", "--workload", "nas_is", "--technique", "dvr", "-n", "1500"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out and "dvr" in out

    def test_table(self, capsys):
        assert main(["table", "table1"]) == 0
        assert "ROB size" in capsys.readouterr().out

    def test_figure_with_workload_filter(self, capsys):
        code = main(
            ["figure", "figure9", "--instructions", "1200", "--workloads", "nas_is"]
        )
        assert code == 0
        assert "nas_is" in capsys.readouterr().out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
