"""Documentation consistency guards: the markdown must keep up with the
code. These catch doc rot mechanically."""

from pathlib import Path

import pytest

from repro.techniques import technique_names
from repro.workloads import WORKLOAD_NAMES

ROOT = Path(__file__).resolve().parent.parent


def read(relpath: str) -> str:
    return (ROOT / relpath).read_text()


class TestTopLevelDocs:
    def test_required_files_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "Makefile"):
            assert (ROOT / name).exists(), name

    def test_docs_pages_exist(self):
        for page in (
            "README.md",
            "architecture.md",
            "techniques.md",
            "isa.md",
            "workloads.md",
            "experiments.md",
            "validation.md",
        ):
            assert (ROOT / "docs" / page).exists(), page

    def test_readme_mentions_core_commands(self):
        readme = read("README.md")
        for command in ("repro run", "repro figure", "repro table", "repro sweep",
                        "repro pipeview", "pytest benchmarks/"):
            assert command in readme, command

    def test_design_covers_every_paper_figure(self):
        design = read("DESIGN.md")
        for artifact in ("Table 1", "Table 2", "Fig 2", "Fig 7", "Fig 8",
                         "Fig 9", "Fig 10", "Fig 11", "Fig 12"):
            assert artifact in design, artifact

    def test_experiments_has_verdicts(self):
        experiments = read("EXPERIMENTS.md")
        assert "reproduced" in experiments
        assert "1139" in experiments  # the Section 4.4 constant


class TestTechniqueDocs:
    def test_every_technique_documented(self):
        techniques_doc = read("docs/techniques.md")
        for name in technique_names():
            base = name.split("-")[0]
            assert f"`{base}" in techniques_doc or base in techniques_doc, name

    def test_swpf_documented(self):
        assert "swpf" in read("docs/techniques.md")


class TestWorkloadDocs:
    def test_every_workload_documented(self):
        workloads_doc = read("docs/workloads.md")
        for name in WORKLOAD_NAMES:
            assert f"`{name}`" in workloads_doc, name

    def test_graph_profiles_documented(self):
        workloads_doc = read("docs/workloads.md")
        for profile in ("KR", "TW", "ORK", "LJN", "UR"):
            assert profile in workloads_doc, profile


class TestBenchmarkCoverage:
    def test_one_bench_per_paper_artifact(self):
        bench_dir = ROOT / "benchmarks"
        stems = {p.stem for p in bench_dir.glob("test_*.py")}
        for expected in (
            "test_tables",
            "test_fig2_rob_sweep",
            "test_fig7_performance",
            "test_fig8_breakdown",
            "test_fig9_mlp",
            "test_fig10_accuracy",
            "test_fig11_timeliness",
            "test_fig12_dvr_rob",
            "test_ablations",
            "test_hwcost",
        ):
            assert expected in stems, expected

    def test_examples_exist_and_are_scripts(self):
        examples = list((ROOT / "examples").glob("*.py"))
        assert len(examples) >= 3
        for example in examples:
            text = example.read_text()
            assert '__main__' in text, example.name
            assert text.startswith("#!") or text.startswith('"""') or "import" in text
