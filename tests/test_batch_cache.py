"""Fault-tolerant batch runner + content-addressed result cache tests."""

import json

import pytest

from repro.cli import main
from repro.config import SimConfig
from repro.errors import ReproError
from repro.experiments import (
    BATCH_COUNTERS,
    BatchFailure,
    ResultCache,
    batch_failures,
    reset_batch_counters,
    run_batch,
    run_simulation,
    run_sweep,
    speedup_matrix,
    successful,
    use_cache,
)
from repro.experiments import batch as batch_module
from repro.experiments import cache as cache_module


@pytest.fixture(autouse=True)
def _fresh_counters():
    reset_batch_counters()
    yield
    reset_batch_counters()


def _spec(workload="camel", technique="ooo", n=800, **kw):
    return {"workload": workload, "technique": technique, "max_instructions": n, **kw}


BAD_SPEC = {"workload": "no_such_workload", "technique": "ooo", "max_instructions": 800}


class TestIsolation:
    def test_one_poisoned_spec_does_not_sink_serial_batch(self):
        specs = [_spec(), _spec(technique="dvr"), dict(BAD_SPEC), _spec("nas_is", "dvr")]
        results = run_batch(specs)
        assert len(results) == 4
        failure = results[2]
        assert isinstance(failure, BatchFailure)
        assert failure.error_type == "WorkloadError"
        assert "no_such_workload" in failure.message
        assert "WorkloadError" in failure.traceback
        assert len(successful(results)) == 3
        assert BATCH_COUNTERS.get("batch.failures") == 1

    def test_one_poisoned_spec_does_not_sink_parallel_pool(self):
        specs = [_spec(), _spec(technique="dvr"), dict(BAD_SPEC), _spec("nas_is", "dvr")]
        results = run_batch(specs, jobs=2)
        assert isinstance(results[2], BatchFailure)
        assert [type(r).__name__ for r in results] == [
            "SimulationResult", "SimulationResult", "BatchFailure", "SimulationResult",
        ]
        assert batch_failures(results)[0].spec["workload"] == "no_such_workload"

    def test_strict_mode_raises_with_worker_traceback(self):
        with pytest.raises(ReproError, match="no_such_workload"):
            run_batch([_spec(), dict(BAD_SPEC)], strict=True)

    def test_failure_to_dict_is_json_safe(self):
        failure = run_batch([dict(BAD_SPEC)])[0]
        payload = json.loads(json.dumps(failure.to_dict()))
        assert payload["failure"] is True
        assert payload["error_type"] == "WorkloadError"

    def test_results_still_bit_identical_to_direct_runs(self):
        results = run_batch([_spec(), dict(BAD_SPEC)], jobs=2)
        direct = run_simulation("camel", "ooo", max_instructions=800)
        assert results[0].to_dict() == direct.to_dict()


class TestRetry:
    def test_transient_pool_death_is_retried(self, monkeypatch):
        calls = {"n": 0}

        def flaky(items, jobs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("worker died")
            return [(key, batch_module._execute_spec(spec)) for key, spec in items]

        monkeypatch.setattr(batch_module, "_run_pool", flaky)
        monkeypatch.setattr(batch_module.time, "sleep", lambda s: None)
        results = run_batch([_spec(), _spec("nas_is")], jobs=2)
        assert calls["n"] == 2
        assert not batch_failures(results)
        assert BATCH_COUNTERS.get("batch.retries") == 1

    def test_retry_reruns_only_unfinished_specs(self, monkeypatch):
        executed = []

        def flaky(items, jobs):
            def gen():
                key, spec = items[0]
                executed.append(key)
                yield key, batch_module._execute_spec(spec)
                if len(executed) == 1:
                    raise OSError("died mid-batch")

            return gen()

        monkeypatch.setattr(batch_module, "_run_pool", flaky)
        monkeypatch.setattr(batch_module.time, "sleep", lambda s: None)
        results = run_batch([_spec(), _spec("nas_is")], jobs=2)
        assert not batch_failures(results)
        # First attempt finished spec 0 then died; the retry ran only spec 1.
        assert len(executed) == 2
        assert executed[0] != executed[1]

    def test_exhausted_retries_become_failures_not_hangs(self, monkeypatch):
        def always_dead(items, jobs):
            raise OSError("pool is cursed")

        monkeypatch.setattr(batch_module, "_run_pool", always_dead)
        monkeypatch.setattr(batch_module.time, "sleep", lambda s: None)
        results = run_batch([_spec(), _spec("nas_is")], jobs=2, retries=2)
        assert len(batch_failures(results)) == 2
        failure = results[0]
        assert failure.error_type == "OSError"
        assert failure.attempts == 3  # initial + 2 retries
        assert "giving up" in failure.message
        assert BATCH_COUNTERS.get("batch.retries") == 2


class TestDedup:
    def test_identical_specs_simulate_once(self):
        results = run_batch([_spec(), _spec()])
        assert BATCH_COUNTERS.get("batch.sim.runs") == 1
        assert BATCH_COUNTERS.get("batch.dedup.reused") == 1
        assert results[0].to_dict() == results[1].to_dict()

    def test_speedup_matrix_runs_ooo_once_per_workload(self):
        matrix = speedup_matrix(["nas_is"], ["ooo", "dvr"], instructions=800)
        # baseline + dvr = 2 simulations; the "ooo" column reuses the baseline.
        assert BATCH_COUNTERS.get("batch.sim.runs") == 2
        assert matrix["nas_is"]["ooo"] == pytest.approx(1.0)
        assert matrix["nas_is"]["dvr"] > 0

    def test_equivalent_explicit_config_and_max_instructions_share_a_key(self):
        a = cache_module.resolved_spec_key(_spec())
        b = cache_module.resolved_spec_key(
            {"workload": "camel", "technique": "ooo",
             "config": SimConfig(max_instructions=800)}
        )
        assert a == b


class TestResultCache:
    def test_hit_miss_roundtrip_bit_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec(technique="dvr")
        first = run_batch([spec], cache=cache)[0]
        assert (cache.hits, cache.misses, cache.stores) == (0, 1, 1)
        second = run_batch([spec], cache=cache)[0]
        assert cache.hits == 1
        direct = run_simulation(**spec)
        assert second.to_dict() == first.to_dict() == direct.to_dict()
        assert BATCH_COUNTERS.get("batch.cache.hits") == 1

    def test_invalidation_on_config_change(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_batch([_spec()], cache=cache)
        bigger_rob = {
            "workload": "camel", "technique": "ooo",
            "config": SimConfig(max_instructions=800).with_core(
                SimConfig().core.with_rob(512)
            ),
        }
        run_batch([bigger_rob], cache=cache)
        assert cache.misses == 2 and cache.hits == 0
        assert len(cache) == 2

    def test_invalidation_on_code_fingerprint_change(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        run_batch([_spec()], cache=cache)
        monkeypatch.setattr(cache_module, "_FINGERPRINT", "pretend-code-edit")
        run_batch([_spec()], cache=cache)
        assert cache.misses == 2

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        run_batch([spec], cache=cache)
        entry = next(tmp_path.glob("*.json"))
        entry.write_text("{not json")
        result = run_batch([spec], cache=cache)[0]
        assert result.ipc > 0
        assert cache.misses == 2

    def test_traced_and_untraced_runs_have_distinct_keys(self, tmp_path):
        cache = ResultCache(tmp_path)
        plain = run_batch([_spec()], cache=cache)[0]
        traced = run_batch([_spec(trace=True)], cache=cache)[0]
        assert plain.trace_digest is None
        assert traced.trace_digest is not None
        # Round-trip the traced entry: digest must survive the cache.
        again = run_batch([_spec(trace=True)], cache=cache)[0]
        assert again.trace_digest == traced.trace_digest
        assert cache.hits == 1

    def test_ambient_cache_serves_run_simulation(self, tmp_path):
        cache = ResultCache(tmp_path)
        with use_cache(cache):
            first = run_simulation("camel", "ooo", max_instructions=800)
            second = run_simulation("camel", "ooo", max_instructions=800)
        assert cache.hits == 1 and cache.misses == 1
        assert first.to_dict() == second.to_dict()
        assert cache_module.active_cache() is None

    def test_second_sweep_invocation_runs_zero_simulations(self, tmp_path):
        run_sweep(
            "nas_is", "dvr", "runahead.dvr_lanes", [16, 32],
            instructions=800, cache=ResultCache(tmp_path),
        )
        reset_batch_counters()
        repeat = run_sweep(
            "nas_is", "dvr", "runahead.dvr_lanes", [16, 32],
            instructions=800, cache=ResultCache(tmp_path),
        )
        assert BATCH_COUNTERS.get("batch.sim.runs") == 0
        assert BATCH_COUNTERS.get("batch.cache.misses") == 0
        assert BATCH_COUNTERS.get("batch.cache.hits") == 3
        assert repeat.rows[0][1] > 0


class TestWorkloadDispatch:
    def test_registry_reports_input_name_support(self):
        from repro.workloads.registry import workload_accepts_input_name

        assert workload_accepts_input_name("bfs")
        assert workload_accepts_input_name("sssp")
        assert not workload_accepts_input_name("camel")
        # hj2/hj8 are functools.partial wrappers; the signature must
        # resolve through them, not report the bare **kwargs.
        assert not workload_accepts_input_name("hj2")

    def test_unknown_workload_still_raises(self):
        from repro.errors import WorkloadError
        from repro.workloads.registry import workload_accepts_input_name

        with pytest.raises(WorkloadError):
            workload_accepts_input_name("nope")

    def test_genuine_typeerror_in_builder_propagates(self, monkeypatch):
        from repro.workloads import registry

        def broken_builder(input_name=None, size="default", seed=None):
            raise TypeError("genuine bug inside workload construction")

        monkeypatch.setitem(registry._BUILDERS, "brokenwl", broken_builder)
        # The old except-TypeError probe would have retried without
        # input_name and masked/duplicated this error.
        with pytest.raises(TypeError, match="genuine bug"):
            run_simulation("brokenwl", "ooo", max_instructions=100, input_name="KR")

    def test_input_name_dropped_for_hpc_db(self):
        # Spec normalization drops input_name for workloads whose
        # builder does not take one, so the two runs are the *same*
        # run: identical label, identical results, identical cache key.
        result = run_simulation("camel", "ooo", max_instructions=800, input_name="KR")
        assert result.workload == "camel"
        baseline = run_simulation("camel", "ooo", max_instructions=800)
        assert result.ipc == baseline.ipc
        from repro.experiments import RunSpec

        with_input = RunSpec("camel", max_instructions=800, input_name="KR")
        without = RunSpec("camel", max_instructions=800)
        assert with_input.key() == without.key()
        # A graph workload's input_name stays identity-bearing.
        assert (
            RunSpec("bfs", max_instructions=800, input_name="KR").key()
            != RunSpec("bfs", max_instructions=800).key()
        )


class TestBatchCLI:
    def test_batch_command_tolerates_failures(self, tmp_path, capsys):
        specs = [_spec(), dict(BAD_SPEC)]
        path = tmp_path / "specs.json"
        path.write_text(json.dumps(specs))
        code = main(["batch", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "ok   camel/ooo" in out
        assert "FAIL no_such_workload/ooo" in out
        assert "1/2 specs succeeded" in out

    def test_batch_command_json_and_overrides(self, tmp_path, capsys):
        specs = [
            {
                "workload": "nas_is",
                "technique": "dvr",
                "max_instructions": 800,
                "overrides": {"runahead.dvr_lanes": 32},
            }
        ]
        path = tmp_path / "specs.json"
        path.write_text(json.dumps(specs))
        code = main(["batch", str(path), "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["workload"] == "nas_is"
        assert payload[0]["ipc"] > 0

    def test_batch_command_rejects_bad_file(self, tmp_path, capsys):
        path = tmp_path / "specs.json"
        path.write_text("{\"not\": \"a list\"}")
        assert main(["batch", str(path)]) == 2

    def test_sweep_cache_flag_round_trip(self, tmp_path, capsys):
        argv = [
            "sweep", "--workload", "nas_is", "--technique", "dvr",
            "--param", "runahead.dvr_lanes", "--values", "16",
            "--instructions", "800", "--cache", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        reset_batch_counters()
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "batch.sim.runs=0" in err
        assert "batch.cache.misses=0" in err
