"""Fault-tolerant batch runner + content-addressed result cache tests."""

import json
import os
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.config import SimConfig
from repro.errors import ReproError
from repro.experiments import (
    BATCH_COUNTERS,
    BatchFailure,
    ResultCache,
    batch_failures,
    reset_batch_counters,
    run_batch,
    run_simulation,
    run_sweep,
    speedup_matrix,
    successful,
    use_cache,
)
from repro.experiments import batch as batch_module
from repro.experiments import cache as cache_module


@pytest.fixture(autouse=True)
def _fresh_counters():
    reset_batch_counters()
    yield
    reset_batch_counters()


def _spec(workload="camel", technique="ooo", n=800, **kw):
    return {"workload": workload, "technique": technique, "max_instructions": n, **kw}


BAD_SPEC = {"workload": "no_such_workload", "technique": "ooo", "max_instructions": 800}


class TestIsolation:
    def test_one_poisoned_spec_does_not_sink_serial_batch(self):
        specs = [_spec(), _spec(technique="dvr"), dict(BAD_SPEC), _spec("nas_is", "dvr")]
        results = run_batch(specs)
        assert len(results) == 4
        failure = results[2]
        assert isinstance(failure, BatchFailure)
        assert failure.error_type == "WorkloadError"
        assert "no_such_workload" in failure.message
        assert "WorkloadError" in failure.traceback
        assert len(successful(results)) == 3
        assert BATCH_COUNTERS.get("batch.failures") == 1

    def test_one_poisoned_spec_does_not_sink_parallel_pool(self):
        specs = [_spec(), _spec(technique="dvr"), dict(BAD_SPEC), _spec("nas_is", "dvr")]
        results = run_batch(specs, jobs=2)
        assert isinstance(results[2], BatchFailure)
        assert [type(r).__name__ for r in results] == [
            "SimulationResult", "SimulationResult", "BatchFailure", "SimulationResult",
        ]
        assert batch_failures(results)[0].spec["workload"] == "no_such_workload"

    def test_strict_mode_raises_with_worker_traceback(self):
        with pytest.raises(ReproError, match="no_such_workload"):
            run_batch([_spec(), dict(BAD_SPEC)], strict=True)

    def test_failure_to_dict_is_json_safe(self):
        failure = run_batch([dict(BAD_SPEC)])[0]
        payload = json.loads(json.dumps(failure.to_dict()))
        assert payload["failure"] is True
        assert payload["error_type"] == "WorkloadError"

    def test_results_still_bit_identical_to_direct_runs(self):
        results = run_batch([_spec(), dict(BAD_SPEC)], jobs=2)
        direct = run_simulation("camel", "ooo", max_instructions=800)
        assert results[0].to_dict() == direct.to_dict()


class TestRetry:
    def test_transient_pool_death_is_retried(self, monkeypatch):
        calls = {"n": 0}

        def flaky(items, jobs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("worker died")
            return [(key, batch_module._execute_spec(spec)) for key, spec in items]

        monkeypatch.setattr(batch_module, "_run_pool", flaky)
        monkeypatch.setattr(batch_module.time, "sleep", lambda s: None)
        results = run_batch([_spec(), _spec("nas_is")], jobs=2)
        assert calls["n"] == 2
        assert not batch_failures(results)
        assert BATCH_COUNTERS.get("batch.retries") == 1

    def test_retry_reruns_only_unfinished_specs(self, monkeypatch):
        executed = []

        def flaky(items, jobs):
            def gen():
                key, spec = items[0]
                executed.append(key)
                yield key, batch_module._execute_spec(spec)
                if len(executed) == 1:
                    raise OSError("died mid-batch")

            return gen()

        monkeypatch.setattr(batch_module, "_run_pool", flaky)
        monkeypatch.setattr(batch_module.time, "sleep", lambda s: None)
        results = run_batch([_spec(), _spec("nas_is")], jobs=2)
        assert not batch_failures(results)
        # First attempt finished spec 0 then died; the retry ran only spec 1.
        assert len(executed) == 2
        assert executed[0] != executed[1]

    def test_exhausted_retries_become_failures_not_hangs(self, monkeypatch):
        def always_dead(items, jobs):
            raise OSError("pool is cursed")

        monkeypatch.setattr(batch_module, "_run_pool", always_dead)
        monkeypatch.setattr(batch_module.time, "sleep", lambda s: None)
        results = run_batch([_spec(), _spec("nas_is")], jobs=2, retries=2)
        assert len(batch_failures(results)) == 2
        failure = results[0]
        assert failure.error_type == "OSError"
        assert failure.attempts == 3  # initial + 2 retries
        assert "giving up" in failure.message
        assert BATCH_COUNTERS.get("batch.retries") == 2


class TestDedup:
    def test_identical_specs_simulate_once(self):
        results = run_batch([_spec(), _spec()])
        assert BATCH_COUNTERS.get("batch.sim.runs") == 1
        assert BATCH_COUNTERS.get("batch.dedup.reused") == 1
        assert results[0].to_dict() == results[1].to_dict()

    def test_speedup_matrix_runs_ooo_once_per_workload(self):
        matrix = speedup_matrix(["nas_is"], ["ooo", "dvr"], instructions=800)
        # baseline + dvr = 2 simulations; the "ooo" column reuses the baseline.
        assert BATCH_COUNTERS.get("batch.sim.runs") == 2
        assert matrix["nas_is"]["ooo"] == pytest.approx(1.0)
        assert matrix["nas_is"]["dvr"] > 0

    def test_equivalent_explicit_config_and_max_instructions_share_a_key(self):
        a = cache_module.resolved_spec_key(_spec())
        b = cache_module.resolved_spec_key(
            {"workload": "camel", "technique": "ooo",
             "config": SimConfig(max_instructions=800)}
        )
        assert a == b


class TestResultCache:
    def test_hit_miss_roundtrip_bit_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec(technique="dvr")
        first = run_batch([spec], cache=cache)[0]
        assert (cache.hits, cache.misses, cache.stores) == (0, 1, 1)
        second = run_batch([spec], cache=cache)[0]
        assert cache.hits == 1
        direct = run_simulation(**spec)
        assert second.to_dict() == first.to_dict() == direct.to_dict()
        assert BATCH_COUNTERS.get("batch.cache.hits") == 1

    def test_invalidation_on_config_change(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_batch([_spec()], cache=cache)
        bigger_rob = {
            "workload": "camel", "technique": "ooo",
            "config": SimConfig(max_instructions=800).with_core(
                SimConfig().core.with_rob(512)
            ),
        }
        run_batch([bigger_rob], cache=cache)
        assert cache.misses == 2 and cache.hits == 0
        assert len(cache) == 2

    def test_invalidation_on_code_fingerprint_change(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        run_batch([_spec()], cache=cache)
        monkeypatch.setattr(cache_module, "_FINGERPRINT", "pretend-code-edit")
        run_batch([_spec()], cache=cache)
        assert cache.misses == 2

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        run_batch([spec], cache=cache)
        entry = next(tmp_path.rglob("*.json"))
        entry.write_text("{not json")
        result = run_batch([spec], cache=cache)[0]
        assert result.ipc > 0
        assert cache.misses == 2

    def test_traced_and_untraced_runs_have_distinct_keys(self, tmp_path):
        cache = ResultCache(tmp_path)
        plain = run_batch([_spec()], cache=cache)[0]
        traced = run_batch([_spec(trace=True)], cache=cache)[0]
        assert plain.trace_digest is None
        assert traced.trace_digest is not None
        # Round-trip the traced entry: digest must survive the cache.
        again = run_batch([_spec(trace=True)], cache=cache)[0]
        assert again.trace_digest == traced.trace_digest
        assert cache.hits == 1

    def test_ambient_cache_serves_run_simulation(self, tmp_path):
        cache = ResultCache(tmp_path)
        with use_cache(cache):
            first = run_simulation("camel", "ooo", max_instructions=800)
            second = run_simulation("camel", "ooo", max_instructions=800)
        assert cache.hits == 1 and cache.misses == 1
        assert first.to_dict() == second.to_dict()
        assert cache_module.active_cache() is None

    def test_second_sweep_invocation_runs_zero_simulations(self, tmp_path):
        run_sweep(
            "nas_is", "dvr", "runahead.dvr_lanes", [16, 32],
            instructions=800, cache=ResultCache(tmp_path),
        )
        reset_batch_counters()
        repeat = run_sweep(
            "nas_is", "dvr", "runahead.dvr_lanes", [16, 32],
            instructions=800, cache=ResultCache(tmp_path),
        )
        assert BATCH_COUNTERS.get("batch.sim.runs") == 0
        assert BATCH_COUNTERS.get("batch.cache.misses") == 0
        assert BATCH_COUNTERS.get("batch.cache.hits") == 3
        assert repeat.rows[0][1] > 0


def _hammer_cache(root, result, keys, barrier):
    """Child-process body for the concurrent-writer stress test."""
    cache = ResultCache(root)
    barrier.wait()  # maximise put/put and put/get overlap
    for key in keys:
        cache.put(key, result)
        assert cache.get(key) is not None


class TestShardedCache:
    def test_entries_land_in_spec_key_prefix_shards(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_batch([_spec(), _spec(technique="dvr")], cache=cache)
        entries = list(tmp_path.rglob("*.json"))
        assert len(entries) == 2
        for entry in entries:
            assert entry.parent.name == entry.stem[:2]

    def test_flat_legacy_entry_is_served_and_migrated(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        run_batch([spec], cache=cache)
        sharded = next(tmp_path.rglob("*.json"))
        flat = tmp_path / sharded.name  # demote to the pre-shard layout
        sharded.rename(flat)
        result = run_batch([spec], cache=cache)[0]
        assert result.ipc > 0
        assert cache.hits == 1
        assert not flat.exists()
        assert (tmp_path / flat.stem[:2] / flat.name).exists()

    def test_duplicate_write_is_a_hit_not_a_store(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        result = run_batch([spec], cache=cache)[0]
        key = next(tmp_path.rglob("*.json")).stem
        other = ResultCache(tmp_path)  # second writer, cold view
        other.put(key, result)
        assert (other.stores, other.dup_writes) == (0, 1)
        assert BATCH_COUNTERS.get("batch.cache.dup_writes") == 1
        assert len(list(tmp_path.rglob("*.json"))) == 1

    def test_publish_race_lost_at_link_time_counts_as_dup(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        spec = _spec()
        result = run_batch([spec], cache=cache)[0]
        key = next(tmp_path.rglob("*.json")).stem
        # Defeat the cheap exists() pre-check so put() reaches the
        # atomic link() publish against an already-published key —
        # the narrow two-writers-finish-together window.
        monkeypatch.setattr(cache_module.Path, "exists", lambda self: False)
        cache.put(key, result)
        assert cache.dup_writes == 1
        assert not list(tmp_path.rglob(".tmp-*"))  # temp file cleaned up

    def test_concurrent_multiprocess_writers_tear_nothing(self, tmp_path):
        import multiprocessing

        result = run_simulation("camel", "ooo", max_instructions=300)
        keys = ["%040x" % (i * 2654435761) for i in range(24)]
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(4)
        procs = [
            ctx.Process(
                target=_hammer_cache, args=(str(tmp_path), result, keys, barrier)
            )
            for _ in range(4)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        cache = ResultCache(tmp_path)
        assert len(cache) == len(keys)
        for entry in tmp_path.rglob("*.json"):
            json.loads(entry.read_text())  # atomic publish ⇒ never torn
        for key in keys:
            assert cache.get(key) is not None

    def test_writer_killed_mid_put_leaves_no_torn_entry(self, tmp_path):
        import signal
        import subprocess
        import sys

        script = (
            "import sys\n"
            "from repro.experiments import ResultCache, run_simulation\n"
            "cache = ResultCache(sys.argv[1])\n"
            "result = run_simulation('camel', 'ooo', max_instructions=300)\n"
            "print('ready', flush=True)\n"
            "i = 0\n"
            "while True:\n"
            "    cache.put('%040d' % i, result)\n"
            "    i += 1\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [str(Path(__file__).resolve().parents[1] / "src"),
                          env.get("PYTHONPATH")])
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", script, str(tmp_path)],
            stdout=subprocess.PIPE, env=env,
        )
        try:
            assert proc.stdout.readline().strip() == b"ready"
            time.sleep(0.3)  # let it publish a few hundred entries
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)
        # rglob, unlike glob.glob, matches dotfiles — skip the victim's
        # in-flight ``.tmp-*`` file (unflushed crash residue, swept below);
        # every *published* entry must be whole.
        entries = [
            p for p in tmp_path.rglob("*.json") if not p.name.startswith(".")
        ]
        assert entries, "writer never published anything"
        for entry in entries:
            json.loads(entry.read_text())  # no torn JSON anywhere
        # A temp file the victim was mid-write on is swept once stale.
        cache = ResultCache(tmp_path)
        for tmp in tmp_path.rglob(".tmp-*"):
            past = time.time() - 2 * cache_module.STALE_TMP_SECONDS
            os.utime(tmp, (past, past))
        report = cache.gc(max_age=10 * cache_module.STALE_TMP_SECONDS)
        assert not list(tmp_path.rglob(".tmp-*"))
        assert report["evicted"] == 0  # fresh entries stay

    def test_stats_reports_per_shard_breakdown(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_batch([_spec(), _spec(technique="dvr"), _spec("nas_is")], cache=cache)
        stats = cache.stats()
        assert stats["entries"] == 3
        assert stats["bytes"] == sum(
            p.stat().st_size for p in tmp_path.rglob("*.json")
        )
        assert sum(s["entries"] for s in stats["shards"].values()) == 3
        for shard, info in stats["shards"].items():
            assert len(shard) == cache_module.SHARD_WIDTH
            assert info["bytes"] > 0

    def test_gc_age_eviction(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_batch([_spec(), _spec(technique="dvr")], cache=cache)
        old, new = sorted(tmp_path.rglob("*.json"))
        stale = time.time() - 1000
        os.utime(old, (stale, stale))
        report = cache.gc(max_age=500)
        assert (report["evicted"], report["kept"]) == (1, 1)
        assert not old.exists() and new.exists()
        assert BATCH_COUNTERS.get("batch.cache.evictions") == 1

    def test_gc_lru_eviction_respects_recency_of_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [_spec(), _spec(technique="dvr"), _spec("nas_is")]
        run_batch(specs, cache=cache)
        paths = sorted(tmp_path.rglob("*.json"))
        for age, path in zip((900, 600, 300), paths):
            then = time.time() - age
            os.utime(path, (then, then))
        # A hit refreshes the oldest entry's LRU clock...
        oldest_key = paths[0].stem
        assert cache.get(oldest_key) is not None
        # ...so a one-entry byte budget keeps it and evicts the others.
        keep_bytes = paths[0].stat().st_size
        report = cache.gc(max_bytes=keep_bytes)
        assert report["evicted"] == 2
        assert paths[0].exists()
        assert not paths[1].exists() and not paths[2].exists()

    def test_gc_dry_run_deletes_nothing(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_batch([_spec(), _spec(technique="dvr")], cache=cache)
        paths = list(tmp_path.rglob("*.json"))
        on_disk = sum(p.stat().st_size for p in paths)
        report = cache.gc(max_bytes=0, dry_run=True)
        # The report tallies exactly what a real gc WOULD evict...
        assert report["evicted"] == 2
        assert report["freed_bytes"] == on_disk
        assert report["kept"] == 0
        # ...while zero deletions actually happen: every entry is still
        # on disk, still indexed, and still served as a hit.
        assert sorted(tmp_path.rglob("*.json")) == sorted(paths)
        assert BATCH_COUNTERS.get("batch.cache.evictions") == 0
        for path in paths:
            assert cache.get(path.stem) is not None

    def test_len_and_total_bytes_use_the_index(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_batch([_spec(), _spec(technique="dvr")], cache=cache)
        fresh = ResultCache(tmp_path)
        assert len(fresh) == 2
        assert fresh.total_bytes() == sum(
            p.stat().st_size for p in tmp_path.rglob("*.json")
        )


class TestCacheCLI:
    def test_cache_stats_text_and_json(self, tmp_path, capsys):
        run_batch([_spec(), _spec(technique="dvr")], cache=ResultCache(tmp_path))
        assert main(["cache", "stats", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries      : 2" in out
        assert main(["cache", "stats", "--dir", str(tmp_path), "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 2 and stats["bytes"] > 0

    def test_cache_gc_with_size_suffix(self, tmp_path, capsys):
        run_batch([_spec(), _spec(technique="dvr")], cache=ResultCache(tmp_path))
        assert main(["cache", "gc", "--dir", str(tmp_path), "--max-bytes", "1K"]) == 0
        out = capsys.readouterr().out
        assert "evicted" in out
        assert len(list(tmp_path.rglob("*.json"))) <= 1

    def test_cache_gc_dry_run_and_age(self, tmp_path, capsys):
        run_batch([_spec()], cache=ResultCache(tmp_path))
        assert main([
            "cache", "gc", "--dir", str(tmp_path), "--max-age", "0s", "--dry-run",
        ]) == 0
        assert "would evict 1" in capsys.readouterr().out
        assert len(list(tmp_path.rglob("*.json"))) == 1

    def test_cache_gc_requires_a_policy(self, tmp_path, capsys):
        assert main(["cache", "gc", "--dir", str(tmp_path)]) == 2
        assert "needs --max-bytes and/or --max-age" in capsys.readouterr().err

    def test_cache_gc_rejects_bad_size(self, tmp_path, capsys):
        assert main([
            "cache", "gc", "--dir", str(tmp_path), "--max-bytes", "lots",
        ]) == 2
        assert "bad size" in capsys.readouterr().err


class TestWorkloadDispatch:
    def test_registry_reports_input_name_support(self):
        from repro.workloads.registry import workload_accepts_input_name

        assert workload_accepts_input_name("bfs")
        assert workload_accepts_input_name("sssp")
        assert not workload_accepts_input_name("camel")
        # hj2/hj8 are functools.partial wrappers; the signature must
        # resolve through them, not report the bare **kwargs.
        assert not workload_accepts_input_name("hj2")

    def test_unknown_workload_still_raises(self):
        from repro.errors import WorkloadError
        from repro.workloads.registry import workload_accepts_input_name

        with pytest.raises(WorkloadError):
            workload_accepts_input_name("nope")

    def test_genuine_typeerror_in_builder_propagates(self, monkeypatch):
        from repro.workloads import registry

        def broken_builder(input_name=None, size="default", seed=None):
            raise TypeError("genuine bug inside workload construction")

        monkeypatch.setitem(registry._BUILDERS, "brokenwl", broken_builder)
        # The old except-TypeError probe would have retried without
        # input_name and masked/duplicated this error.
        with pytest.raises(TypeError, match="genuine bug"):
            run_simulation("brokenwl", "ooo", max_instructions=100, input_name="KR")

    def test_input_name_dropped_for_hpc_db(self):
        # Spec normalization drops input_name for workloads whose
        # builder does not take one, so the two runs are the *same*
        # run: identical label, identical results, identical cache key.
        result = run_simulation("camel", "ooo", max_instructions=800, input_name="KR")
        assert result.workload == "camel"
        baseline = run_simulation("camel", "ooo", max_instructions=800)
        assert result.ipc == baseline.ipc
        from repro.experiments import RunSpec

        with_input = RunSpec("camel", max_instructions=800, input_name="KR")
        without = RunSpec("camel", max_instructions=800)
        assert with_input.key() == without.key()
        # A graph workload's input_name stays identity-bearing.
        assert (
            RunSpec("bfs", max_instructions=800, input_name="KR").key()
            != RunSpec("bfs", max_instructions=800).key()
        )


class TestBatchCLI:
    def test_batch_command_tolerates_failures(self, tmp_path, capsys):
        specs = [_spec(), dict(BAD_SPEC)]
        path = tmp_path / "specs.json"
        path.write_text(json.dumps(specs))
        code = main(["batch", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "ok   camel/ooo" in out
        assert "FAIL no_such_workload/ooo" in out
        assert "1/2 specs succeeded" in out

    def test_batch_command_json_and_overrides(self, tmp_path, capsys):
        specs = [
            {
                "workload": "nas_is",
                "technique": "dvr",
                "max_instructions": 800,
                "overrides": {"runahead.dvr_lanes": 32},
            }
        ]
        path = tmp_path / "specs.json"
        path.write_text(json.dumps(specs))
        code = main(["batch", str(path), "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["workload"] == "nas_is"
        assert payload[0]["ipc"] > 0

    def test_batch_command_rejects_bad_file(self, tmp_path, capsys):
        path = tmp_path / "specs.json"
        path.write_text("{\"not\": \"a list\"}")
        assert main(["batch", str(path)]) == 2

    def test_sweep_cache_flag_round_trip(self, tmp_path, capsys):
        argv = [
            "sweep", "--workload", "nas_is", "--technique", "dvr",
            "--param", "runahead.dvr_lanes", "--values", "16",
            "--instructions", "800", "--cache", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        reset_batch_counters()
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "batch.sim.runs=0" in err
        assert "batch.cache.misses=0" in err
