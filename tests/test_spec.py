"""Spec-layer tests: serialization round-trip, key stability (golden
fixtures), resolution/normalization semantics, config-pin precedence,
end-to-end spec-vs-kwargs bit-identity, and the CLI spec plumbing.

Golden keys pin a constant fingerprint (real keys embed the package
code fingerprint, which changes on any source edit); regenerate after
an intentional schema/normalization change with::

    PYTHONPATH=src python -m pytest tests/test_spec.py --update-goldens
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.config import SimConfig
from repro.errors import ConfigError, ReproError
from repro.experiments import (
    RunSpec,
    apply_override,
    run_simulation,
    run_sweep,
)
from repro.perf.trace import arch_trace_key

GOLDEN_PATH = Path(__file__).parent / "golden" / "spec_keys.json"

#: Pinned in place of the live code fingerprint so golden keys (and the
#: hypothesis property) survive source edits.
FINGERPRINT = "spec-test-fingerprint"


# ---------------------------------------------------------------------------
# Hypothesis round-trip: RunSpec -> JSON -> RunSpec -> identical key.

_OVERRIDE_VALUES = {
    "runahead.dvr_lanes": st.integers(min_value=1, max_value=256),
    "runahead.nested_threshold": st.integers(min_value=1, max_value=128),
    "core.rob_size": st.integers(min_value=16, max_value=512),
    "stride_prefetcher_enabled": st.booleans(),
}


def _overrides():
    return st.dictionaries(
        st.sampled_from(sorted(_OVERRIDE_VALUES)), st.none(), max_size=2
    ).flatmap(
        lambda paths: st.tuples(
            *(
                st.tuples(st.just(p), _OVERRIDE_VALUES[p])
                for p in sorted(paths)
            )
        )
    )


_SPECS = st.builds(
    RunSpec,
    workload=st.sampled_from(["camel", "bfs", "nas_is", "not_a_workload"]),
    technique=st.sampled_from(["ooo", "vr", "dvr", "dvr-offload", "swpf", "bogus"]),
    overrides=_overrides(),
    max_instructions=st.one_of(st.none(), st.integers(min_value=1, max_value=10**6)),
    input_name=st.one_of(st.none(), st.sampled_from(["KR", "UR", "WB"])),
    size=st.sampled_from(["default", "tiny"]),
    seed=st.one_of(st.none(), st.integers(min_value=0, max_value=2**31)),
    trace=st.booleans(),
    trace_capacity=st.integers(min_value=1, max_value=1 << 20),
)


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(spec=_SPECS)
    def test_json_round_trip_preserves_spec_and_key(self, spec):
        restored = RunSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.key(FINGERPRINT) == spec.key(FINGERPRINT)

    @settings(max_examples=30, deadline=None)
    @given(spec=_SPECS)
    def test_resolution_is_idempotent_and_key_stable(self, spec):
        resolved = spec.resolved(strict=False)
        assert resolved.resolved(strict=False) == resolved
        # Keying always goes through the resolved form, so the raw and
        # resolved spec share one content address.
        assert resolved.key(FINGERPRINT) == spec.key(FINGERPRINT)
        # A resolved spec still round-trips (config fully materialized).
        assert RunSpec.from_json(resolved.to_json()) == resolved

    def test_unknown_payload_field_rejected(self):
        with pytest.raises(ConfigError):
            RunSpec.from_payload(
                {"schema": "repro.spec/1", "workload": "camel", "warp": 9}
            )

    def test_wrong_schema_rejected(self):
        with pytest.raises(ConfigError):
            RunSpec.from_payload({"schema": "repro.spec/2", "workload": "camel"})

    def test_config_typo_rejected(self):
        payload = RunSpec("camel", config=SimConfig()).to_payload()
        payload["config"]["runahead"]["dvr_lanez"] = 1
        del payload["config"]["runahead"]["dvr_lanes"]
        with pytest.raises(ConfigError):
            RunSpec.from_payload(payload)


# ---------------------------------------------------------------------------
# Golden key-stability fixtures.

GOLDEN_SPECS = {
    "camel/ooo/defaults": RunSpec("camel"),
    "bfs/dvr/input+seed": RunSpec(
        "bfs", technique="dvr", max_instructions=5_000, input_name="KR", seed=7
    ),
    "camel/dvr-offload/override": RunSpec(
        "camel",
        technique="dvr-offload",
        overrides=(("runahead.dvr_lanes", 32),),
    ),
    "nas_is/vr/traced": RunSpec(
        "nas_is", technique="vr", trace=True, trace_capacity=1_024
    ),
    "camel/ooo/input-dropped": RunSpec("camel", input_name="KR"),
}


def test_golden_spec_keys(update_goldens):
    keys = {name: spec.key(FINGERPRINT) for name, spec in GOLDEN_SPECS.items()}
    if update_goldens:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(keys, indent=2, sort_keys=True) + "\n")
        return
    assert GOLDEN_PATH.exists(), "no golden keys; run with --update-goldens"
    goldens = json.loads(GOLDEN_PATH.read_text())
    assert keys == goldens, (
        "spec keys drifted from tests/golden/spec_keys.json — this "
        "invalidates every existing result cache. If intentional, bump "
        "SPEC_SCHEMA and regenerate with --update-goldens."
    )


# ---------------------------------------------------------------------------
# Normalization semantics.

class TestNormalization:
    def test_max_instructions_folds_into_config(self):
        a = RunSpec("camel", max_instructions=800)
        b = RunSpec("camel", config=SimConfig(max_instructions=800))
        assert a.key(FINGERPRINT) == b.key(FINGERPRINT)

    def test_overrides_fold_into_config(self):
        a = RunSpec("camel", overrides=(("runahead.dvr_lanes", 32),))
        b = RunSpec("camel", config=apply_override(SimConfig(), "runahead.dvr_lanes", 32))
        assert a.key(FINGERPRINT) == b.key(FINGERPRINT)

    def test_ablation_pins_normalize_into_key(self):
        pinned = apply_override(
            apply_override(SimConfig(), "runahead.discovery_enabled", False),
            "runahead.nested_enabled",
            False,
        )
        a = RunSpec("camel", technique="dvr-offload")
        b = RunSpec("camel", technique="dvr-offload", config=pinned)
        assert a.key(FINGERPRINT) == b.key(FINGERPRINT)
        # ...and the pins are what distinguishes dvr-offload from dvr.
        assert a.key(FINGERPRINT) != RunSpec("camel", technique="dvr").key(FINGERPRINT)

    def test_trace_capacity_ignored_when_trace_off(self):
        a = RunSpec("camel", trace_capacity=64)
        b = RunSpec("camel", trace_capacity=1 << 20)
        assert a.key(FINGERPRINT) == b.key(FINGERPRINT)
        assert a.key(FINGERPRINT) != RunSpec("camel", trace=True).key(FINGERPRINT)

    def test_tlb_defaults_fold_out_of_the_key(self):
        # The TLB axis postdates repro.spec/1: a spec that spells out
        # the default-off TLB must key identically to one that never
        # mentions it, or every pre-TLB cache entry and golden key
        # would be orphaned.
        plain = RunSpec("camel", technique="dvr", max_instructions=800)
        explicit = RunSpec(
            "camel",
            technique="dvr",
            max_instructions=800,
            overrides=(
                ("memory.tlb.enable", "false"),
                ("runahead.tlb_policy", "walk"),
            ),
        )
        assert explicit.key(FINGERPRINT) == plain.key(FINGERPRINT)
        assert "tlb" not in plain.resolved().config.to_dict()["memory"]
        # Non-default values must key differently...
        enabled = RunSpec(
            "camel",
            technique="dvr",
            max_instructions=800,
            overrides=(("memory.tlb.enable", "true"),),
        )
        assert enabled.key(FINGERPRINT) != plain.key(FINGERPRINT)
        # ...including the speculative-walk policy knob.
        drop = RunSpec(
            "camel",
            technique="dvr",
            max_instructions=800,
            overrides=(("runahead.tlb_policy", "drop"),),
        )
        assert drop.key(FINGERPRINT) != plain.key(FINGERPRINT)

    def test_arch_trace_key_is_technique_independent(self):
        base = arch_trace_key(RunSpec("camel", max_instructions=800).stream_projection())
        dvr = arch_trace_key(
            RunSpec("camel", technique="dvr", max_instructions=800).stream_projection()
        )
        assert base == dvr
        # swpf rewrites the program: different stream.
        swpf = arch_trace_key(
            RunSpec("camel", technique="swpf", max_instructions=800).stream_projection()
        )
        assert swpf != base
        # The step limit bounds the captured stream: different key.
        longer = arch_trace_key(
            RunSpec("camel", max_instructions=900).stream_projection()
        )
        assert longer != base


# ---------------------------------------------------------------------------
# Config-pin precedence (the sweep-vs-ablation bug).

class TestPinPrecedence:
    def test_sweeping_pinned_field_under_ablation_raises(self):
        # Pre-refactor this was silently ignored (constructor kwargs
        # beat RunaheadConfig); now config is authoritative and the
        # contradiction is a hard error.
        with pytest.raises(ReproError, match="pins"):
            run_sweep(
                "camel",
                "dvr-offload",
                "runahead.discovery_enabled",
                [True, False],
                instructions=400,
            )

    def test_sweeping_pinned_field_to_pinned_value_is_fine(self):
        result = run_sweep(
            "camel",
            "dvr-noreconv",
            "runahead.reconvergence_enabled",
            [False],
            instructions=400,
        )
        assert len(result.rows) == 1

    def test_sweeping_free_field_under_ablation_is_fine(self):
        result = run_sweep(
            "camel", "dvr-offload", "runahead.dvr_lanes", [16], instructions=400
        )
        assert len(result.rows) == 1


# ---------------------------------------------------------------------------
# End-to-end: spec-driven run is bit-identical to the kwargs path.

@pytest.mark.parametrize("technique", ["ooo", "vr", "dvr", "dvr-offload"])
def test_spec_run_bit_identical_to_kwargs_run(technique):
    kwargs_result = run_simulation(
        "camel", technique, max_instructions=800, trace=True
    )
    spec_result = run_simulation(
        RunSpec("camel", technique=technique, max_instructions=800, trace=True)
    )
    assert kwargs_result.trace_digest is not None
    assert spec_result.to_dict() == kwargs_result.to_dict()
    assert spec_result.trace_digest == kwargs_result.trace_digest


# ---------------------------------------------------------------------------
# CLI plumbing: --dump-spec -> --spec round trip, spec-file batches.

class TestCLISpecs:
    def _dump(self, capsys, argv):
        assert main(argv + ["--dump-spec"]) == 0
        return capsys.readouterr().out

    def test_run_dump_spec_round_trip(self, tmp_path, capsys):
        dumped = self._dump(
            capsys,
            ["run", "--workload", "nas_is", "--technique", "dvr", "-n", "600"],
        )
        payload = json.loads(dumped)
        assert payload["schema"] == "repro.spec/1"
        assert payload["config"]["max_instructions"] == 600
        path = tmp_path / "spec.json"
        path.write_text(dumped)

        assert main(["run", "--spec", str(path)]) == 0
        from_spec = capsys.readouterr().out
        assert main(
            ["run", "--workload", "nas_is", "--technique", "dvr", "-n", "600"]
        ) == 0
        from_kwargs = capsys.readouterr().out
        assert from_spec == from_kwargs

    def test_dump_spec_is_reparseable_and_key_stable(self, capsys):
        dumped = self._dump(
            capsys,
            ["run", "--workload", "camel", "--technique", "dvr-offload", "-n", "600"],
        )
        restored = RunSpec.from_json(dumped)
        assert restored.key(FINGERPRINT) == RunSpec(
            "camel", technique="dvr-offload", max_instructions=600
        ).key(FINGERPRINT)

    def test_batch_accepts_dumped_specs(self, tmp_path, capsys):
        dumped = self._dump(
            capsys, ["compare", "--workloads", "nas_is", "--techniques", "dvr",
                     "--instructions", "600"]
        )
        path = tmp_path / "specs.json"
        path.write_text(dumped)
        assert main(["batch", "--specs", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2/2 specs succeeded" in out

    def test_sweep_dump_spec_carries_overrides(self, capsys):
        dumped = self._dump(
            capsys,
            ["sweep", "--workload", "nas_is", "--technique", "dvr",
             "--param", "runahead.dvr_lanes", "--values", "16", "32",
             "--instructions", "600"],
        )
        specs = json.loads(dumped)
        assert len(specs) == 4  # (baseline + dvr) x 2 values
        lanes = {s["config"]["runahead"]["dvr_lanes"] for s in specs
                 if s.get("technique") == "dvr"}
        assert lanes == {16, 32}

    def test_conflicting_sweep_dump_fails_eagerly(self, capsys):
        with pytest.raises(ConfigError):
            main(
                ["sweep", "--workload", "camel", "--technique", "dvr-offload",
                 "--param", "runahead.nested_enabled", "--values", "true",
                 "--dump-spec"]
            )

    def test_list_json_is_machine_readable(self, capsys):
        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec_schema"] == "repro.spec/1"
        assert payload["workloads"]["camel"]["accepts_input_name"] is False
        assert payload["workloads"]["bfs"]["accepts_input_name"] is True
        assert payload["techniques"]["dvr-offload"]["pins"] == {
            "discovery_enabled": False,
            "nested_enabled": False,
        }
        assert "default" in payload["sizes"]
        assert "figure7" in payload["figures"]
