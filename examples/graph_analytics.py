#!/usr/bin/env python
"""Graph analytics: DVR across the GAP kernels and Table 2 inputs.

The paper's motivating domain. Runs BFS/CC/SSSP over the power-law (KR)
and uniform-random (UR) graph profiles and shows:

* the speedup DVR extracts on each kernel/input pair, and
* how Nested Vector Runahead engages on UR, whose uniformly small
  vertices leave too few inner-loop iterations to vectorise directly
  (paper Sections 4.3 and 6.1).

Usage::

    python examples/graph_analytics.py [instructions]
"""

import sys

from repro import run_simulation

INSTRUCTIONS = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
KERNELS = ["bfs", "cc", "sssp"]
INPUTS = ["KR", "UR"]


def main() -> None:
    print(
        f"{'kernel':8s} {'input':6s} {'ooo IPC':>8s} {'dvr IPC':>8s} "
        f"{'speedup':>8s} {'nested spawns':>14s} {'plain spawns':>13s}"
    )
    for kernel in KERNELS:
        for input_name in INPUTS:
            base = run_simulation(
                kernel, "ooo", max_instructions=INSTRUCTIONS, input_name=input_name
            )
            dvr = run_simulation(
                kernel, "dvr", max_instructions=INSTRUCTIONS, input_name=input_name
            )
            stats = dvr.technique_stats
            nested = int(stats["nested_spawns"])
            plain = int(stats["spawns"]) - nested
            print(
                f"{kernel:8s} {input_name:6s} {base.ipc:8.3f} {dvr.ipc:8.3f} "
                f"{dvr.ipc / base.ipc:7.2f}x {nested:14d} {plain:13d}"
            )
    print(
        "\nExpected shape: DVR speeds up every pair; the UR input leans"
        "\nharder on Nested Discovery Mode (short inner loops)."
    )


if __name__ == "__main__":
    main()
