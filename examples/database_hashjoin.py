#!/usr/bin/env python
"""Database probe chains: hash-join with 2 vs 8 dependent lookups.

HJ2/HJ8 model a database hash-join probe whose every level is a serial
``hash -> load`` dependency — the access pattern that defeats table
prefetchers (IMP) but that vector runahead overlaps across 128 future
probes at once. This reproduces the paper's HJ2/HJ8 columns of
Figure 7 and shows how the chain length changes the picture.

Usage::

    python examples/database_hashjoin.py [instructions]
"""

import sys

from repro import run_simulation

INSTRUCTIONS = int(sys.argv[1]) if len(sys.argv) > 1 else 12_000
TECHNIQUES = ["ooo", "pre", "imp", "vr", "dvr", "oracle"]


def main() -> None:
    results = {}
    for workload in ("hj2", "hj8"):
        results[workload] = {
            tech: run_simulation(workload, tech, max_instructions=INSTRUCTIONS)
            for tech in TECHNIQUES
        }

    print(f"{'technique':10s} {'hj2 speedup':>12s} {'hj8 speedup':>12s}")
    for tech in TECHNIQUES:
        row = []
        for workload in ("hj2", "hj8"):
            base = results[workload]["ooo"].ipc
            row.append(results[workload][tech].ipc / base)
        print(f"{tech:10s} {row[0]:11.2f}x {row[1]:11.2f}x")

    hj8_dvr = results["hj8"]["dvr"]
    print(
        f"\nhj8 under DVR: {int(hj8_dvr.technique_stats['subthread_prefetches'])} "
        f"runahead prefetches, mean MSHR occupancy "
        f"{hj8_dvr.mean_mshr_occupancy:.1f} (of 24)."
    )
    print(
        "Expected shape: IMP learns nothing (hashing breaks linear\n"
        "correlation); the longer hj8 chain widens DVR's edge because\n"
        "each of its 8 serial levels is overlapped across all lanes."
    )


if __name__ == "__main__":
    main()
