#!/usr/bin/env python
"""The paper's headline motivation: VR fades with big ROBs, DVR doesn't.

Sweeps the reorder buffer from 128 to 512 entries (back-end queues
scaled in proportion, Section 6.5) and prints normalised performance of
the plain OoO core, Vector Runahead, and Decoupled Vector Runahead —
Figures 2 and 12 side by side for one workload.

Usage::

    python examples/rob_sensitivity.py [workload] [instructions]
"""

import sys

from repro import CoreConfig, SimConfig, run_simulation

_args = sys.argv[1:]
WORKLOAD = _args[0] if _args and not _args[0].isdigit() else "camel"
_numbers = [a for a in _args if a.isdigit()]
INSTRUCTIONS = int(_numbers[0]) if _numbers else 12_000
ROB_SIZES = [128, 192, 224, 350, 512]


def main() -> None:
    reference = run_simulation(
        WORKLOAD,
        "ooo",
        SimConfig().with_core(CoreConfig().with_scaled_backend(350)),
        max_instructions=INSTRUCTIONS,
    )
    print(f"{WORKLOAD}: IPC normalised to OoO@350 (= {reference.ipc:.3f})\n")
    print(f"{'ROB':>5s} {'ooo':>7s} {'vr':>7s} {'dvr':>7s} {'stall%':>7s}")
    for rob in ROB_SIZES:
        cfg = SimConfig().with_core(CoreConfig().with_scaled_backend(rob))
        row = {}
        for tech in ("ooo", "vr", "dvr"):
            row[tech] = run_simulation(
                WORKLOAD, tech, cfg, max_instructions=INSTRUCTIONS
            )
        print(
            f"{rob:5d} {row['ooo'].ipc / reference.ipc:7.2f} "
            f"{row['vr'].ipc / reference.ipc:7.2f} "
            f"{row['dvr'].ipc / reference.ipc:7.2f} "
            f"{100 * row['ooo'].full_rob_stall_fraction:6.1f}%"
        )
    print(
        "\nExpected shape (Figures 2 & 12): the VR and OoO curves converge"
        "\nas the ROB grows (stall-triggered runahead loses its trigger),"
        "\nwhile the DVR curve stays clearly above the OoO curve."
    )


if __name__ == "__main__":
    main()
