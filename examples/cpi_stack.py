#!/usr/bin/env python
"""Where do the cycles go? CPI stacks across the technique family.

The timing core attributes every commit-point cycle to the structure on
its critical path (Sniper-style cycle accounting). Comparing the stacks
across techniques makes the paper's mechanics visible at a glance:

* the baseline's cycles sit in ``mem_dram`` (dependent misses),
* VR converts some of them into ``runahead_block`` (delayed
  termination — the cost DVR's decoupling removes), and
* DVR converts them into ``base``/``mem_l1`` (prefetched hits).

Usage::

    python examples/cpi_stack.py [workload] [instructions]
"""

import sys

from repro import run_simulation
from repro.observability import subtree

_args = sys.argv[1:]
WORKLOAD = _args[0] if _args and not _args[0].isdigit() else "graph500"
_numbers = [a for a in _args if a.isdigit()]
INSTRUCTIONS = int(_numbers[0]) if _numbers else 12_000
TECHNIQUES = ["ooo", "pre", "vr", "dvr", "oracle"]

BAR_WIDTH = 44


def bar(fraction: float) -> str:
    return "#" * max(0, round(fraction * BAR_WIDTH))


def stack_from_counters(result) -> dict:
    """CPI stack read back from the observability counter registry:
    ``core.cpi_stack.<bucket>`` holds the cycles charged to each bucket."""
    instructions = max(1.0, result.counters.get("core.commit.instructions", 1.0))
    return {
        bucket: cycles / instructions
        for bucket, cycles in subtree(result.counters, "core.cpi_stack").items()
    }


def main() -> None:
    results = {
        tech: run_simulation(WORKLOAD, tech, max_instructions=INSTRUCTIONS)
        for tech in TECHNIQUES
    }
    buckets = sorted(
        {
            bucket
            for result in results.values()
            for bucket in stack_from_counters(result)
        }
    )
    print(f"{WORKLOAD}: CPI stacks ({INSTRUCTIONS} instructions per run)\n")
    for tech, result in results.items():
        stack = stack_from_counters(result)
        cpi = sum(stack.values())
        print(f"{tech:8s} CPI {cpi:5.2f}  IPC {result.ipc:5.2f}")
        for bucket in buckets:
            value = stack.get(bucket, 0.0)
            if value < 0.01:
                continue
            print(f"    {bucket:16s} {value:5.2f}  {bar(value / cpi)}")
        print()
    print(
        "Reading guide: 'mem_dram' is time lost to off-chip dependent\n"
        "misses; 'runahead_block' is VR's delayed termination holding up\n"
        "commit; DVR has no such bucket because its subthread is fully\n"
        "decoupled (the paper's key insight #2)."
    )


if __name__ == "__main__":
    main()
