#!/usr/bin/env python
"""Bring your own kernel: write a workload and run DVR over it.

Shows the full public API surface end to end:

1. allocate data with :class:`MemoryImage`,
2. hand-lower a loop with :class:`ProgramBuilder` (the compare +
   backward-branch shape lets DVR's loop-bound detector work),
3. simulate with :class:`OoOCore` under any technique, and
4. read the run's statistics.

The kernel is a two-level "social graph" walk: for each user, visit
their followers and fetch each follower's profile record — the
``A[B[i]]`` structure the whole runahead line of work targets.

Usage::

    python examples/custom_kernel.py [instructions]
"""

import sys

import numpy as np

from repro import MemoryImage, OoOCore, ProgramBuilder, SimConfig, make_technique

INSTRUCTIONS = int(sys.argv[1]) if len(sys.argv) > 1 else 12_000

USERS = 1 << 14
FOLLOWERS_PER_USER = 6


def build_workload():
    rng = np.random.default_rng(42)
    mem = MemoryImage()
    # CSR-style follower lists + a profile table.
    offsets = mem.allocate(
        "OFFSETS", np.arange(0, USERS * FOLLOWERS_PER_USER + 1, FOLLOWERS_PER_USER)[: USERS + 1]
    )
    followers = mem.allocate(
        "FOLLOWERS", rng.integers(0, USERS, USERS * FOLLOWERS_PER_USER)
    )
    profiles = mem.allocate("PROFILES", rng.integers(0, 1 << 30, USERS))
    reach = mem.allocate("REACH", USERS)

    b = ProgramBuilder("social_walk")
    b.li("r1", offsets.base)
    b.li("r2", followers.base)
    b.li("r3", profiles.base)
    b.li("r4", reach.base)
    b.li("r5", USERS)
    b.li("r6", 0)                      # u
    b.label("users")
    b.shli("r7", "r6", 3)
    b.add("r8", "r1", "r7")
    b.load("r9", "r8")                 # start = OFFSETS[u]   (outer stride)
    b.load("r10", "r8", 8)             # end   = OFFSETS[u+1]
    b.li("r11", 0)                     # reach accumulator
    b.mov("r12", "r9")                 # j = start
    b.cmp_lt("r13", "r12", "r10")
    b.bez("r13", "done_followers")
    b.label("followers")
    b.shli("r14", "r12", 3)
    b.add("r14", "r2", "r14")
    b.load("r15", "r14")               # f = FOLLOWERS[j]    (inner stride)
    b.shli("r16", "r15", 3)
    b.add("r16", "r3", "r16")
    b.load("r17", "r16")               # p = PROFILES[f]     (indirect!)
    b.add("r11", "r11", "r17")
    b.addi("r12", "r12", 1)
    b.cmp_lt("r13", "r12", "r10")
    b.bnz("r13", "followers")          # compare + backward branch
    b.label("done_followers")
    b.shli("r18", "r6", 3)
    b.add("r18", "r4", "r18")
    b.store("r11", "r18")              # REACH[u] = sum
    b.addi("r6", "r6", 1)
    b.cmp_lt("r19", "r6", "r5")
    b.bnz("r19", "users")
    return b.build(), mem


def main() -> None:
    print(f"custom social-walk kernel, {INSTRUCTIONS} instructions per run\n")
    baseline_ipc = None
    for technique in ("ooo", "vr", "dvr", "oracle"):
        program, mem = build_workload()
        core = OoOCore(
            program,
            mem,
            SimConfig(max_instructions=INSTRUCTIONS),
            technique=make_technique(technique),
            workload_name="social_walk",
        )
        result = core.run()
        baseline_ipc = baseline_ipc or result.ipc
        line = f"{technique:8s} IPC {result.ipc:6.3f}  ({result.ipc / baseline_ipc:4.2f}x)"
        if technique == "dvr":
            stats = result.technique_stats
            line += (
                f"   [{int(stats['spawns'])} subthread spawns, "
                f"{int(stats['nested_spawns'])} nested, "
                f"{int(stats['subthread_prefetches'])} prefetches]"
            )
        print(line)
    print(
        "\nWith only 6 followers per user the inner loop is far below the"
        "\n64-iteration threshold, so DVR leans on Nested Discovery Mode"
        "\nto gather 128 profile addresses from many users at once."
    )


if __name__ == "__main__":
    main()
