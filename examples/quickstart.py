#!/usr/bin/env python
"""Quickstart: simulate one benchmark under every technique.

Runs the paper's running example — the Graph500 top-down BFS step of
Algorithm 1 — through the out-of-order core with each prefetching and
runahead technique, printing a one-benchmark slice of Figure 7.

Usage::

    python examples/quickstart.py [instructions]
"""

import sys

from repro import run_simulation, technique_names

INSTRUCTIONS = int(sys.argv[1]) if len(sys.argv) > 1 else 15_000


def main() -> None:
    print(f"graph500 ({INSTRUCTIONS} instructions per run)\n")
    baseline = run_simulation("graph500", "ooo", max_instructions=INSTRUCTIONS)
    print(f"{'technique':14s} {'IPC':>6s} {'speedup':>8s} {'LLC MPKI':>9s} {'MSHRs':>6s}")
    for technique in technique_names():
        if technique.startswith("dvr-"):
            continue  # ablation configs; see examples/ablations via CLI
        result = (
            baseline
            if technique == "ooo"
            else run_simulation("graph500", technique, max_instructions=INSTRUCTIONS)
        )
        print(
            f"{technique:14s} {result.ipc:6.3f} {result.ipc / baseline.ipc:7.2f}x "
            f"{result.llc_mpki():9.1f} {result.mean_mshr_occupancy:6.1f}"
        )
    print(
        "\nExpected shape (paper Figure 7): dvr is the best real technique;"
        "\nvr barely helps on a 350-entry ROB (its trigger rarely pays off);"
        "\noracle bounds everything."
    )


if __name__ == "__main__":
    main()
