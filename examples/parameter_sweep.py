#!/usr/bin/env python
"""Sweeping design knobs with the generic sweep API.

Uses :func:`repro.experiments.run_sweep` to reproduce two of the
paper's sensitivity discussions in a few lines each:

* **lane count** — Section 6.1 notes that 256-element DVR would close
  the remaining Oracle gap on NAS-CG at the cost of a bigger VRAT;
* **MSHR budget** — the resource whose saturation is the whole game
  (Figure 9); everyone shares the same 24 entries.

Each sweep is averaged over multiple workload seeds, with standard
deviations — the CLI equivalents are shown in the output.

Usage::

    python examples/parameter_sweep.py [instructions]
"""

import sys

from repro.experiments import run_sweep

INSTRUCTIONS = int(sys.argv[1]) if len(sys.argv) > 1 else 6_000
SEEDS = [1, 2, 3]


def main() -> None:
    lanes = run_sweep(
        "nas_cg",
        "dvr",
        "runahead.dvr_lanes",
        [32, 64, 128, 256],
        instructions=INSTRUCTIONS,
        seeds=SEEDS,
    )
    print(lanes.to_text())
    print(
        "# same sweep from the shell:\n"
        "#   repro sweep --workload nas_cg --technique dvr \\\n"
        "#         --param runahead.dvr_lanes --values 32 64 128 256 --seeds 3\n"
    )

    mshrs = run_sweep(
        "camel",
        "dvr",
        "memory.l1d_mshrs",
        [8, 24, 64],
        instructions=INSTRUCTIONS,
        seeds=SEEDS,
    )
    print(mshrs.to_text())
    print(
        "\nReading guide: lane count scales DVR's lookahead until the\n"
        "MSHR file (second sweep) becomes the binding resource — which\n"
        "is why the paper keeps 128 lanes against 24 MSHRs and calls the\n"
        "MSHR occupancy plot (Figure 9) the secret of DVR's success."
    )


if __name__ == "__main__":
    main()
