#!/usr/bin/env python
"""Watching DVR work: side-by-side pipeline timelines.

Renders the same slice of a workload twice — on the plain OoO core and
under DVR — using the pipeline-trace API. On the baseline, each
iteration's dependent loads show long ``=`` execute spans (DRAM round
trips); under DVR the same loads shrink to L1-hit stubs because the
subthread prefetched them.

Usage::

    python examples/pipeline_visualization.py [workload] [rows]
"""

import sys

from repro import OoOCore, SimConfig, make_technique
from repro.core import pipeview_legend, render_pipeview
from repro.workloads import build_workload

_args = sys.argv[1:]
WORKLOAD = _args[0] if _args and not _args[0].isdigit() else "kangaroo"
_numbers = [a for a in _args if a.isdigit()]
ROWS = int(_numbers[0]) if _numbers else 24
SKIP = 2_000  # trace a steady-state window, past the warmup


def traced_run(technique_name: str):
    wl = build_workload(WORKLOAD)
    core = OoOCore(
        wl.program,
        wl.memory,
        SimConfig(max_instructions=SKIP + ROWS),
        technique=make_technique(technique_name),
        workload_name=WORKLOAD,
        trace_limit=SKIP + ROWS,
    )
    core.run()
    return core.trace[SKIP:]


def main() -> None:
    print(pipeview_legend())
    for technique in ("ooo", "dvr"):
        trace = traced_run(technique)
        print(f"\n--- {WORKLOAD} under {technique} "
              f"(instructions {SKIP}..{SKIP + ROWS}) ---")
        print(render_pipeview(trace, max_width=90))
    print(
        "\nReading guide: compare the LOAD rows. Long '=' spans are"
        "\nDRAM round trips on the commit critical path; under dvr most"
        "\nof them collapse to short L1 hits, and the whole window spans"
        "\nfar fewer cycles (see the header line of each timeline)."
    )


if __name__ == "__main__":
    main()
